//! Bounded candidate tracking for point-query sketches.
//!
//! Countsketch-style structures answer point queries but cannot *enumerate*
//! heavy items. The standard fix (used since \[14\]) is to maintain, online, a
//! small set of the items whose current estimates are largest: every update
//! re-estimates the touched item and the set evicts its weakest member when
//! over capacity. The set's size is charged to the reported space.

use bd_stream::{SketchState, StateError, StateReader, StateWriter};
use std::collections::HashSet;

/// A capped set of candidate items, evicted by a caller-supplied score.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    cap: usize,
    items: HashSet<u64>,
    /// Reusable prune-pass buffers (no semantic state).
    keys: Vec<u64>,
    scored: Vec<(u64, f64)>,
    scores: Vec<f64>,
}

impl CandidateSet {
    /// Create with capacity `cap ≥ 1`.
    pub fn new(cap: usize) -> Self {
        CandidateSet {
            cap: cap.max(1),
            items: HashSet::new(),
            keys: Vec::new(),
            scored: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Offer an item. The set is allowed to grow to `2·cap` before a prune
    /// pass re-scores everything and keeps the top `cap` by `|score|` —
    /// amortizing eviction to O(1) score evaluations per offer while never
    /// dropping an item that was in the true top `cap` at prune time.
    pub fn offer<F: Fn(u64) -> f64>(&mut self, item: u64, score: F) {
        self.items.insert(item);
        if self.items.len() > 2 * self.cap {
            self.prune(|items, out| out.extend(items.iter().map(|&i| score(i))));
        }
    }

    /// Offer a whole chunk of items with a *batched* scorer: prune passes
    /// trigger exactly as under per-item [`CandidateSet::offer`] (the set
    /// never exceeds `2·cap`), but each pass scores the entire set through
    /// one `score_many(items, out)` call — the hook the batched ingest
    /// paths use to evaluate all candidates in one multi-row hash pass
    /// instead of `2·cap` scalar point queries.
    pub fn offer_chunk<I, F>(&mut self, items: I, mut score_many: F)
    where
        I: IntoIterator<Item = u64>,
        F: FnMut(&[u64], &mut Vec<f64>),
    {
        for item in items {
            self.items.insert(item);
            if self.items.len() > 2 * self.cap {
                self.prune(&mut score_many);
            }
        }
    }

    /// One prune pass: re-score everything, keep the top `cap` by `|score|`.
    /// All buffers are reused across passes — zero steady-state allocations.
    fn prune<F: FnMut(&[u64], &mut Vec<f64>)>(&mut self, mut score_many: F) {
        self.keys.clear();
        self.keys.extend(self.items.iter().copied());
        // Deterministic scoring order regardless of HashSet iteration.
        self.keys.sort_unstable();
        self.scores.clear();
        score_many(&self.keys, &mut self.scores);
        self.scored.clear();
        self.scored.extend(
            self.keys
                .iter()
                .copied()
                .zip(self.scores.iter().map(|s| s.abs())),
        );
        self.scored
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        self.scored.truncate(self.cap);
        self.items.clear();
        self.items.extend(self.scored.iter().map(|&(i, _)| i));
    }

    /// The current candidates (unordered).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }

    /// The candidate maximizing `|score|`, if any.
    pub fn argmax<F: Fn(u64) -> f64>(&self, score: F) -> Option<u64> {
        self.items
            .iter()
            .copied()
            .max_by(|&a, &b| score(a).abs().partial_cmp(&score(b).abs()).unwrap())
    }

    /// The top `k` candidates by `|score|`, descending.
    pub fn top_k<F: Fn(u64) -> f64>(&self, k: usize, score: F) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = self.items.iter().map(|&i| (i, score(i))).collect();
        scored.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Bits to store the set: one identifier per slot (the set holds up to
    /// `2·cap` items between prune passes).
    pub fn space_bits(&self, universe: u64) -> u64 {
        2 * self.cap as u64 * bd_hash::width_unsigned(universe.max(2) - 1) as u64
    }
}

impl SketchState for CandidateSet {
    /// Mutable state: the candidate items, encoded sorted (the prune buffers
    /// are scratch). Restoring inserts without a prune pass, so the set is
    /// reinstated exactly as saved — including mid-growth sizes above `cap`.
    fn save_state(&self, w: &mut StateWriter) {
        let mut items: Vec<u64> = self.items.iter().copied().collect();
        items.sort_unstable();
        w.u64_seq(items.iter().copied());
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let items = r.u64_seq()?;
        if items.len() > 2 * self.cap {
            return Err(StateError::Corrupt("candidate set above 2·cap"));
        }
        self.items.clear();
        self.items.extend(items);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_strongest_items() {
        let mut c = CandidateSet::new(3);
        let score = |i: u64| i as f64; // bigger id = stronger
        for i in 1..=20u64 {
            c.offer(i, score);
        }
        assert!(c.len() <= 6, "bounded by 2·cap");
        assert_eq!(c.argmax(score), Some(20));
        let top: Vec<u64> = c.top_k(3, score).into_iter().map(|(i, _)| i).collect();
        assert_eq!(top, vec![20, 19, 18]);
    }

    #[test]
    fn top_k_ordering() {
        let mut c = CandidateSet::new(8);
        let score = |i: u64| -((i % 5) as f64); // |score| = i mod 5
        for i in 0..8u64 {
            c.offer(i, score);
        }
        let top = c.top_k(2, score);
        assert_eq!(top.len(), 2);
        assert!(top[0].1.abs() >= top[1].1.abs());
    }

    #[test]
    fn duplicate_offers_are_idempotent() {
        let mut c = CandidateSet::new(2);
        for _ in 0..5 {
            c.offer(7, |_| 1.0);
        }
        assert_eq!(c.len(), 1);
    }
}
