//! General-turnstile `(1±ε)` L1 estimation, Figure 5 of the paper
//! (the algorithm of Kane–Nelson–Woodruff \[39\] that Theorem 8 modifies).
//!
//! Maintain `y = A f` with `r = Θ(1/ε²)` k-wise independent Cauchy rows and
//! `y' = A' f` with `r' = Θ(1)` rows. Output
//! `L̃ = y'_med · (−ln((1/r) Σ_i cos(y_i / y'_med)))`,
//! where `y'_med = median_i |y'_i|`. The log-cosine functional is the
//! empirical characteristic function of the Cauchy sketch; Theorem 7 (of the
//! paper, = Theorem 2.2 of \[39\]) gives `L̃ = (1±ε)‖f‖₁` w.p. 3/4.
//!
//! Also provides [`MedianL1`] — Indyk's median estimator (`Fact 1`):
//! `median_i |y_i|` over `O(ε^{-2} log(1/δ))` rows, used by the heavy-hitters
//! algorithm to get `R = (1 ± 1/8)‖f‖₁`.

use crate::weight::median_f64;
use bd_stream::{
    Mergeable, NormEstimate, Sketch, SketchState, SpaceReport, SpaceUsage, StateError, StateReader,
    StateWriter,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The Figure 5 log-cosine L1 estimator.
#[derive(Clone, Debug)]
pub struct LogCosL1 {
    seed: u64,
    main_rows: Vec<bd_hash::CauchyRow>,
    aux_rows: Vec<bd_hash::CauchyRow>,
    y: Vec<f64>,
    y_aux: Vec<f64>,
    max_abs: f64,
    mass: u64,
}

impl LogCosL1 {
    /// `r = ceil(c/ε²)` main rows and `r' = 31` auxiliary rows; `k`-wise
    /// entries with `k = Θ(log(1/ε)/log log(1/ε))` (we use `max(4, ...)`).
    pub fn new(seed: u64, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let r = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(8);
        let k = k_for_eps(epsilon);
        Self::with_rows(seed, r, 31, k)
    }

    /// Explicit row counts (for experiments).
    pub fn with_rows(seed: u64, main: usize, aux: usize, k: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        LogCosL1 {
            seed,
            main_rows: (0..main)
                .map(|_| bd_hash::CauchyRow::new(&mut rng, k))
                .collect(),
            aux_rows: (0..aux)
                .map(|_| bd_hash::CauchyRow::new(&mut rng, k))
                .collect(),
            y: vec![0.0; main],
            y_aux: vec![0.0; aux],
            max_abs: 0.0,
            mass: 0,
        }
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        let d = delta as f64;
        for (r, row) in self.main_rows.iter().enumerate() {
            self.y[r] += d * row.entry(item);
            self.max_abs = self.max_abs.max(self.y[r].abs());
        }
        for (r, row) in self.aux_rows.iter().enumerate() {
            self.y_aux[r] += d * row.entry(item);
            self.max_abs = self.max_abs.max(self.y_aux[r].abs());
        }
        self.mass += delta.unsigned_abs();
    }

    /// The Figure 5 estimate `L̃`.
    pub fn estimate(&self) -> f64 {
        let mut aux_abs: Vec<f64> = self.y_aux.iter().map(|v| v.abs()).collect();
        if aux_abs.is_empty() || self.mass == 0 {
            return 0.0;
        }
        let med = median_f64(&mut aux_abs);
        if med == 0.0 {
            return 0.0;
        }
        let mean_cos: f64 =
            self.y.iter().map(|&v| (v / med).cos()).sum::<f64>() / self.y.len() as f64;
        // Numerical guard: the functional needs mean_cos ∈ (0, 1].
        let mean_cos = mean_cos.clamp(1e-12, 1.0);
        med * -mean_cos.ln()
    }

    /// Number of main rows.
    pub fn main_rows(&self) -> usize {
        self.y.len()
    }
}

/// Independence parameter `k = Θ(log(1/ε)/log log(1/ε))` (Figure 5 setup).
pub fn k_for_eps(epsilon: f64) -> usize {
    let l = (1.0 / epsilon).ln().max(2.0);
    ((l / l.ln().max(1.0)).ceil() as usize).max(4)
}

impl Sketch for LogCosL1 {
    fn update(&mut self, item: u64, delta: i64) {
        LogCosL1::update(self, item, delta);
    }
}

impl NormEstimate for LogCosL1 {
    /// Estimates `‖f‖₁` to `(1±ε)` (probability 3/4 per instance).
    fn norm_estimate(&self) -> f64 {
        self.estimate()
    }
}

impl Mergeable for LogCosL1 {
    /// Row-wise addition on both the main and auxiliary Cauchy rows:
    /// `y = A·f` is linear, so the merged rows are the rows of the
    /// concatenated streams. Deterministic, but only *estimate-equal* to a
    /// single pass — float addition re-associates across the shard boundary
    /// (the [`MedianL1`] contract, `DESIGN.md §7`).
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.seed == other.seed
                && self.y.len() == other.y.len()
                && self.y_aux.len() == other.y_aux.len(),
            "LogCosL1 merge requires identically seeded sketches"
        );
        for (a, b) in self
            .y
            .iter_mut()
            .zip(&other.y)
            .chain(self.y_aux.iter_mut().zip(&other.y_aux))
        {
            *a += b;
            self.max_abs = self.max_abs.max(a.abs());
        }
        self.max_abs = self.max_abs.max(other.max_abs);
        self.mass += other.mass;
    }
}

impl SketchState for LogCosL1 {
    /// Mutable state: the main and auxiliary row accumulators plus the
    /// magnitude watermark and ingested mass (rows rebuild from the seed).
    fn save_state(&self, w: &mut StateWriter) {
        w.f64_slice(&self.y);
        w.f64_slice(&self.y_aux);
        w.f64(self.max_abs);
        w.u64(self.mass);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.f64_slice_into(&mut self.y)?;
        r.f64_slice_into(&mut self.y_aux)?;
        self.max_abs = r.f64()?;
        self.mass = r.u64()?;
        Ok(())
    }
}

impl SpaceUsage for LogCosL1 {
    fn space(&self) -> SpaceReport {
        // Counters are maintained to precision δ = Θ(ε/m) (paper Lemma 12 /
        // Theorem 7): width = log2(max|y|/δ) bits each. This is the
        // O(ε^{-2} log n) baseline cost that Theorem 8 reduces.
        let eps_over_m = 1.0 / (self.mass.max(2) as f64 * self.main_rows().max(2) as f64);
        let width = ((self.max_abs.max(1.0) / eps_over_m).log2().ceil() as u64).max(1) + 1;
        let counters = (self.y.len() + self.y_aux.len()) as u64;
        SpaceReport {
            counters,
            counter_bits: counters * width,
            seed_bits: self
                .main_rows
                .iter()
                .map(|r| r.seed_bits() as u64)
                .chain(self.aux_rows.iter().map(|r| r.seed_bits() as u64))
                .sum(),
            overhead_bits: 0,
        }
    }
}

/// Indyk's median-of-Cauchy L1 estimator (paper Fact 1).
#[derive(Clone, Debug)]
pub struct MedianL1 {
    seed: u64,
    rows: Vec<bd_hash::CauchyRow>,
    y: Vec<f64>,
    max_abs: f64,
    mass: u64,
}

impl MedianL1 {
    /// `(1 ± ε)` with failure probability δ: `O(ε^{-2} log(1/δ))` rows.
    pub fn new(seed: u64, epsilon: f64, delta: f64) -> Self {
        let rows = ((8.0 / (epsilon * epsilon)) * (1.0 / delta).ln().max(1.0)).ceil() as usize;
        Self::with_rows(seed, rows.max(8))
    }

    /// Explicit row count.
    pub fn with_rows(seed: u64, rows: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        MedianL1 {
            seed,
            rows: (0..rows)
                .map(|_| bd_hash::CauchyRow::new(&mut rng, 4))
                .collect(),
            y: vec![0.0; rows],
            max_abs: 0.0,
            mass: 0,
        }
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        let d = delta as f64;
        for (r, row) in self.rows.iter().enumerate() {
            self.y[r] += d * row.entry(item);
            self.max_abs = self.max_abs.max(self.y[r].abs());
        }
        self.mass += delta.unsigned_abs();
    }

    /// `median |y_i| / median(|Cauchy|)`; the Cauchy absolute median is 1.
    pub fn estimate(&self) -> f64 {
        let mut abs: Vec<f64> = self.y.iter().map(|v| v.abs()).collect();
        median_f64(&mut abs)
    }
}

impl Sketch for MedianL1 {
    fn update(&mut self, item: u64, delta: i64) {
        MedianL1::update(self, item, delta);
    }
}

impl NormEstimate for MedianL1 {
    /// Estimates `‖f‖₁` (Indyk's median estimator, Fact 1).
    fn norm_estimate(&self) -> f64 {
        self.estimate()
    }
}

impl Mergeable for MedianL1 {
    /// Row-wise addition: `y = A·f` is linear, so the merged rows are the
    /// rows of the concatenated streams. Deterministic, but only
    /// *estimate-equal* to a single pass: float addition re-associates
    /// across the shard boundary, so the last ulps of each row may differ
    /// from the sequentially accumulated sums.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.seed == other.seed && self.y.len() == other.y.len(),
            "MedianL1 merge requires identically seeded sketches"
        );
        for (a, b) in self.y.iter_mut().zip(&other.y) {
            *a += b;
            self.max_abs = self.max_abs.max(a.abs());
        }
        self.max_abs = self.max_abs.max(other.max_abs);
        self.mass += other.mass;
    }
}

impl SketchState for MedianL1 {
    /// Mutable state: the row accumulators plus the magnitude watermark and
    /// ingested mass (Cauchy rows rebuild from the seed).
    fn save_state(&self, w: &mut StateWriter) {
        w.f64_slice(&self.y);
        w.f64(self.max_abs);
        w.u64(self.mass);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.f64_slice_into(&mut self.y)?;
        self.max_abs = r.f64()?;
        self.mass = r.u64()?;
        Ok(())
    }
}

impl SpaceUsage for MedianL1 {
    fn space(&self) -> SpaceReport {
        let eps_over_m = 1.0 / (self.mass.max(2) as f64 * self.y.len().max(2) as f64);
        let width = ((self.max_abs.max(1.0) / eps_over_m).log2().ceil() as u64).max(1) + 1;
        SpaceReport {
            counters: self.y.len() as u64,
            counter_bits: self.y.len() as u64 * width,
            seed_bits: self.rows.iter().map(|r| r.seed_bits() as u64).sum(),
            overhead_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::{BoundedDeletionGen, NetworkDiffGen};
    use bd_stream::FrequencyVector;

    #[test]
    fn logcos_estimates_l1_on_general_turnstile() {
        let mut ok = 0;
        for t in 0..10 {
            let mut est = LogCosL1::new(t, 0.15);
            let stream = NetworkDiffGen::new(1 << 14, 20_000, 0.3).generate_seeded(100 + t);
            for u in &stream {
                est.update(u.item, u.delta);
            }
            let truth = FrequencyVector::from_stream(&stream).l1() as f64;
            if (est.estimate() - truth).abs() / truth < 0.25 {
                ok += 1;
            }
        }
        assert!(ok >= 7, "only {ok}/10 trials within tolerance");
    }

    #[test]
    fn median_estimator_concentrates() {
        let mut est = MedianL1::new(2, 0.1, 0.05);
        let stream = BoundedDeletionGen::new(1 << 12, 30_000, 4.0).generate_seeded(7);
        for u in &stream {
            est.update(u.item, u.delta);
        }
        let truth = FrequencyVector::from_stream(&stream).l1() as f64;
        let e = est.estimate();
        assert!((e - truth).abs() / truth < 0.2, "estimate {e} vs {truth}");
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let est = LogCosL1::new(3, 0.2);
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn median_merge_is_estimate_equal_to_single_pass() {
        let stream = BoundedDeletionGen::new(1 << 12, 20_000, 4.0).generate_seeded(9);
        let mut whole = MedianL1::with_rows(21, 64);
        let mut a = MedianL1::with_rows(21, 64);
        let mut b = MedianL1::with_rows(21, 64);
        let half = stream.len() / 2;
        for (t, u) in stream.iter().enumerate() {
            whole.update(u.item, u.delta);
            if t < half { &mut a } else { &mut b }.update(u.item, u.delta);
        }
        a.merge_from(&b);
        let (merged, single) = (a.estimate(), whole.estimate());
        assert!(
            (merged - single).abs() <= 1e-6 * single.abs().max(1.0),
            "merged {merged} vs single-pass {single}"
        );
    }

    #[test]
    fn logcos_merge_is_estimate_equal_to_single_pass() {
        let stream = NetworkDiffGen::new(1 << 12, 20_000, 0.3).generate_seeded(14);
        let mut whole = LogCosL1::with_rows(33, 128, 31, 4);
        let mut a = LogCosL1::with_rows(33, 128, 31, 4);
        let mut b = LogCosL1::with_rows(33, 128, 31, 4);
        let half = stream.len() / 2;
        for (t, u) in stream.iter().enumerate() {
            whole.update(u.item, u.delta);
            if t < half { &mut a } else { &mut b }.update(u.item, u.delta);
        }
        a.merge_from(&b);
        let (merged, single) = (a.estimate(), whole.estimate());
        assert!(
            (merged - single).abs() <= 1e-6 * single.abs().max(1.0),
            "merged {merged} vs single-pass {single}"
        );
    }

    #[test]
    #[should_panic(expected = "identically seeded")]
    fn logcos_merge_rejects_different_seeds() {
        let mut a = LogCosL1::with_rows(1, 16, 7, 4);
        let b = LogCosL1::with_rows(2, 16, 7, 4);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "identically seeded")]
    fn median_merge_rejects_different_seeds() {
        let mut a = MedianL1::with_rows(1, 16);
        let b = MedianL1::with_rows(2, 16);
        a.merge_from(&b);
    }

    #[test]
    fn space_grows_with_stream_mass() {
        let mut est = MedianL1::with_rows(4, 16);
        est.update(1, 1);
        let small = est.space_bits();
        for i in 0..10_000u64 {
            est.update(i % 64, 7);
        }
        assert!(est.space_bits() > small);
    }
}
