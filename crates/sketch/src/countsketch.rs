//! Countsketch of Charikar–Chen–Farach-Colton \[14\] (paper §2.1, Lemma 2).
//!
//! A `d × w` table; row `i` hashes items with a 4-wise `h_i : [n] → [w]` and
//! signs them with a 4-wise `g_i : [n] → {±1}`. The point estimate is the
//! median over rows of `g_i(j)·A[i][h_i(j)]`, with per-row guarantee
//! `|g_i(j)A[i,h_i(j)] − f_j| < w'^{-1/2}·Err₂^{w'}(f)` (w' = w/6) with
//! probability 2/3. This is the unbounded-deletion baseline that CSSS
//! (bd-core) simulates on samples; it is also reused by the baseline L1
//! sampler and the heavy-hitter comparisons.

use crate::weight::{median_f64, Weight};
use bd_hash::RowHashes;
use bd_stream::{
    BatchScratch, MaxMag, Mergeable, PointQuery, PointQueryBatch, Sketch, SketchState, SpaceReport,
    SpaceUsage, StateError, StateReader, StateWriter, Update,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Reusable batched-ingest scratch: aggregation table, hash plan, and
/// per-row output buffers. Pure scratch — carries no sketch state.
#[derive(Clone, Debug, Default)]
struct IngestScratch {
    agg: BatchScratch,
    plan: RowHashes,
    buckets: Vec<u64>,
    signs: Vec<bool>,
}

/// A Countsketch with `depth` rows and `width` buckets per row over counters
/// of type `W` (`i64` for plain streams, `f64` for precision-scaled ones).
#[derive(Clone, Debug)]
pub struct CountSketch<W: Weight = i64> {
    seed: u64,
    depth: usize,
    width: usize,
    table: Vec<W>,
    bucket_hashes: Vec<bd_hash::KWiseHash>,
    sign_hashes: Vec<bd_hash::SignHash>,
    max_mag: MaxMag,
    scratch: IngestScratch,
}

impl<W: Weight> CountSketch<W> {
    /// Create a `depth × width` Countsketch from a seed (identical seeds and
    /// shapes give identical hash functions, the [`Mergeable`] contract).
    /// For the paper's parameters use `width = 6k` and `depth = O(log n)`.
    pub fn new(seed: u64, depth: usize, width: usize) -> Self {
        assert!(depth >= 1 && width >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        CountSketch {
            seed,
            depth,
            width,
            table: vec![W::zero(); depth * width],
            bucket_hashes: (0..depth)
                .map(|_| bd_hash::KWiseHash::fourwise(&mut rng, width as u64))
                .collect(),
            sign_hashes: (0..depth)
                .map(|_| bd_hash::SignHash::new(&mut rng))
                .collect(),
            max_mag: MaxMag::default(),
            scratch: IngestScratch::default(),
        }
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Apply an update `f_item ← f_item + delta`.
    #[inline]
    pub fn update(&mut self, item: u64, delta: W) {
        for r in 0..self.depth {
            let b = self.bucket_hashes[r].hash(item) as usize;
            let signed = if self.sign_hashes[r].sign(item) >= 0 {
                delta
            } else {
                delta.neg()
            };
            let cell = &mut self.table[r * self.width + b];
            cell.add_assign(signed);
            self.max_mag.observe_mag(cell.abs_f64() as u64);
        }
    }

    /// The estimate from a single row (the `g_i(j)·a_{i,h_i(j)}` of Lemma 2).
    #[inline]
    pub fn row_estimate(&self, row: usize, item: u64) -> f64 {
        let b = self.bucket_hashes[row].hash(item) as usize;
        let v = self.table[row * self.width + b].to_f64();
        if self.sign_hashes[row].sign(item) >= 0 {
            v
        } else {
            -v
        }
    }

    /// Median-of-rows point estimate `y*_j`.
    pub fn estimate(&self, item: u64) -> f64 {
        let mut ests: Vec<f64> = (0..self.depth)
            .map(|r| self.row_estimate(r, item))
            .collect();
        median_f64(&mut ests)
    }

    /// The squared L2 norm of one row, `Σ_b A[r][b]²` — a `(1 ± O(w^{-1/2}))`
    /// estimate of `‖f‖₂²` (paper Lemma 4).
    pub fn row_l2_squared(&self, row: usize) -> f64 {
        self.table[row * self.width..(row + 1) * self.width]
            .iter()
            .map(|c| {
                let v = c.to_f64();
                v * v
            })
            .sum()
    }

    /// Median across rows of the row-L2 estimates of `‖f‖₂`.
    pub fn l2_estimate(&self) -> f64 {
        let mut ests: Vec<f64> = (0..self.depth)
            .map(|r| self.row_l2_squared(r).sqrt())
            .collect();
        median_f64(&mut ests)
    }

    /// Raw cell access for composition (row-major).
    pub fn cell(&self, row: usize, bucket: usize) -> W {
        self.table[row * self.width + bucket]
    }
}

impl<W: Weight> Sketch for CountSketch<W> {
    fn update(&mut self, item: u64, delta: i64) {
        CountSketch::update(self, item, W::from_i64(delta));
    }

    /// Batched ingestion: collapse duplicate items to net deltas first
    /// (reusable aggregation table, zero steady-state allocations), then
    /// canonicalize the distinct items once and evaluate each row's bucket
    /// and sign polynomials over the whole chunk in one interleaved-Horner
    /// pass. Estimates are bit-identical to the sequential loop by
    /// linearity; the `max_mag` width tracker may record *smaller* peaks
    /// (intra-chunk cancellations never hit the table), so reported counter
    /// widths reflect the magnitudes actually written, which can depend on
    /// the chunking.
    fn update_batch(&mut self, batch: &[Update]) {
        let Self {
            depth,
            width,
            table,
            bucket_hashes,
            sign_hashes,
            max_mag,
            scratch,
            ..
        } = self;
        let IngestScratch {
            agg,
            plan,
            buckets,
            signs,
        } = scratch;
        let agg = agg.aggregate_net(batch);
        let live = || agg.iter().filter(|&&(_, net)| net != 0);
        plan.load(live().map(|&(item, _)| item));
        if plan.is_empty() {
            return;
        }
        for r in 0..*depth {
            plan.eval_buckets(&bucket_hashes[r], buckets);
            plan.eval_signs(&sign_hashes[r], signs);
            let row = &mut table[r * *width..(r + 1) * *width];
            for (idx, &(_, net)) in live().enumerate() {
                let delta = W::from_i64(net);
                let signed = if signs[idx] { delta } else { delta.neg() };
                let cell = &mut row[buckets[idx] as usize];
                cell.add_assign(signed);
                max_mag.observe_mag(cell.abs_f64() as u64);
            }
        }
    }
}

impl<W: Weight> PointQuery for CountSketch<W> {
    fn point(&self, item: u64) -> f64 {
        self.estimate(item)
    }
}

impl<W: Weight> PointQueryBatch for CountSketch<W> {
    /// Every row's bucket and sign polynomials are evaluated over the whole
    /// query set in one interleaved-Horner pass (call-local plan, so the
    /// receiver stays shared); each item's median-of-rows is then read out
    /// of the row-major buffers. Bit-identical per item to
    /// [`CountSketch::estimate`].
    fn point_many(&self, items: &[u64], out: &mut Vec<f64>) {
        let mut plan = RowHashes::default();
        plan.load(items.iter().copied());
        let mut buckets = Vec::new();
        let mut signs = Vec::new();
        for r in 0..self.depth {
            plan.append_buckets(&self.bucket_hashes[r], &mut buckets);
            plan.append_signs(&self.sign_hashes[r], &mut signs);
        }
        let m = items.len();
        let mut ests = Vec::with_capacity(self.depth);
        out.reserve(m);
        for idx in 0..m {
            ests.clear();
            for r in 0..self.depth {
                let v = self.table[r * self.width + buckets[r * m + idx] as usize].to_f64();
                ests.push(if signs[r * m + idx] { v } else { -v });
            }
            out.push(median_f64(&mut ests));
        }
    }
}

impl<W: Weight> Mergeable for CountSketch<W> {
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.seed == other.seed && self.depth == other.depth && self.width == other.width,
            "CountSketch merge requires identically seeded sketches"
        );
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            a.add_assign(*b);
            self.max_mag.observe_mag(a.abs_f64() as u64);
        }
    }
}

impl<W: Weight> SketchState for CountSketch<W> {
    /// Mutable state is the counter table plus the width watermark; hashes
    /// and shapes rebuild from the spec.
    fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.max_mag.max());
        w.u64_seq(self.table.iter().map(|c| c.to_bits64()));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let mut mag = MaxMag::default();
        mag.observe_mag(r.u64()?);
        self.max_mag = mag;
        let n = r.seq(8)?;
        if n != self.table.len() {
            return Err(StateError::Corrupt("countsketch table length"));
        }
        for cell in self.table.iter_mut() {
            *cell = W::from_bits64(r.u64()?);
        }
        Ok(())
    }
}

impl<W: Weight> SpaceUsage for CountSketch<W> {
    fn space(&self) -> SpaceReport {
        let seed_bits: usize = self
            .bucket_hashes
            .iter()
            .map(|h| h.seed_bits())
            .chain(self.sign_hashes.iter().map(|g| g.seed_bits()))
            .sum();
        SpaceReport {
            counters: (self.depth * self.width) as u64,
            counter_bits: (self.depth * self.width) as u64 * self.max_mag.bits_signed(),
            seed_bits: seed_bits as u64,
            overhead_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::BoundedDeletionGen;
    use bd_stream::{FrequencyVector, StreamRunner};

    #[test]
    fn exact_on_sparse_input() {
        // With few items and a wide table, estimates are exact w.h.p.
        let mut cs = CountSketch::<i64>::new(1, 9, 256);
        cs.update(10, 5);
        cs.update(20, -3);
        cs.update(10, 2);
        assert_eq!(cs.estimate(10), 7.0);
        assert_eq!(cs.estimate(20), -3.0);
        assert_eq!(cs.estimate(99), 0.0);
    }

    #[test]
    fn error_bounded_by_lemma_two() {
        let k = 16usize;
        let mut cs = CountSketch::<i64>::new(2, 15, 6 * k);
        let stream = BoundedDeletionGen::new(1 << 12, 30_000, 4.0).generate_seeded(2);
        let truth = FrequencyVector::from_stream(&stream);
        for u in &stream {
            cs.update(u.item, u.delta);
        }
        let bound = truth.err_k(k, 2) / (k as f64).sqrt();
        let mut violations = 0usize;
        let items: Vec<u64> = truth.support();
        for &i in &items {
            let err = (cs.estimate(i) - truth.get(i) as f64).abs();
            if err > bound.max(1.0) {
                violations += 1;
            }
        }
        // Lemma 2 gives the bound w.h.p. per item; allow a tiny slack count.
        assert!(
            violations <= items.len() / 50,
            "{violations}/{} violations of the Countsketch bound",
            items.len()
        );
    }

    #[test]
    fn l2_estimate_close() {
        let mut cs = CountSketch::<i64>::new(3, 11, 512);
        let stream = BoundedDeletionGen::new(1 << 10, 20_000, 2.0).generate_seeded(3);
        for u in &stream {
            cs.update(u.item, u.delta);
        }
        let truth = FrequencyVector::from_stream(&stream).l2();
        let est = cs.l2_estimate();
        assert!(
            (est - truth).abs() / truth < 0.2,
            "L2 estimate {est} vs {truth}"
        );
    }

    #[test]
    fn float_counters_accept_scaled_updates() {
        let mut cs = CountSketch::<f64>::new(4, 7, 64);
        cs.update(5, 2.5);
        cs.update(5, 0.5);
        assert!((cs.estimate(5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn space_reports_counter_growth() {
        let mut cs = CountSketch::<i64>::new(5, 2, 4);
        let before = cs.space().counter_bits;
        for _ in 0..1000 {
            cs.update(1, 1000);
        }
        let after = cs.space().counter_bits;
        assert!(after > before, "counter widths must grow with magnitude");
        assert_eq!(cs.space().counters, 8);
        assert!(cs.space().seed_bits > 0);
    }

    #[test]
    fn batched_ingestion_is_bit_identical() {
        let stream = BoundedDeletionGen::new(1 << 10, 20_000, 3.0).generate_seeded(6);
        let mut per_update = CountSketch::<i64>::new(7, 7, 128);
        let mut batched = per_update.clone();
        StreamRunner::unbatched().run(&mut per_update, &stream);
        StreamRunner::new().run(&mut batched, &stream);
        for i in 0..1024u64 {
            assert_eq!(
                per_update.estimate(i).to_bits(),
                batched.estimate(i).to_bits()
            );
        }
    }

    #[test]
    fn merge_equals_single_pass() {
        let stream = BoundedDeletionGen::new(1 << 10, 10_000, 2.0).generate_seeded(8);
        let mid = stream.len() / 2;
        let mut whole = CountSketch::<i64>::new(9, 5, 64);
        let mut left = whole.clone();
        let mut right = whole.clone();
        for u in &stream {
            Sketch::update(&mut whole, u.item, u.delta);
        }
        for u in &stream.updates[..mid] {
            Sketch::update(&mut left, u.item, u.delta);
        }
        for u in &stream.updates[mid..] {
            Sketch::update(&mut right, u.item, u.delta);
        }
        left.merge_from(&right);
        for i in 0..1024u64 {
            assert_eq!(whole.estimate(i).to_bits(), left.estimate(i).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "identically seeded")]
    fn merge_rejects_different_seeds() {
        let mut a = CountSketch::<i64>::new(1, 3, 16);
        let b = CountSketch::<i64>::new(2, 3, 16);
        a.merge_from(&b);
    }
}
