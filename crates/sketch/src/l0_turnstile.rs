//! The unbounded-deletion `(1±ε)` L0 estimator, Figure 6 of the paper
//! (the Kane–Nelson–Woodruff \[40\] algorithm that `αL0Estimator` windows).
//!
//! A `log(n) × K` matrix `B` over `F_p`, `K = 1/ε²`: item `i` lands in row
//! `lsb(h₁(i))` and column `h₃(h₂(i))`, contributing `Δ·u_{h₄(h₂(i))}`.
//! At query time a rough estimate `R ∈ [L0, 110·L0]` selects the row
//! `i* = max(0, log(16R/K))`, whose expected live-item count is `Θ(K)`;
//! inverting the balls-in-bins occupancy `T` of that row gives
//! `L̃0 = (32R/K)·ln(1−T/K)/ln(1−1/K)` (Theorem 9). A collapsed single row
//! of `K' = 2K` buckets handles `L0 < K/16` (Lemma 17), and a [`SmallL0`]
//! handles `L0 ≤ 100` exactly.

use crate::rough_l0::RoughL0;
use crate::small_l0::SmallL0;
use bd_stream::{NormEstimate, Sketch, SpaceReport, SpaceUsage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Figure 6 L0 estimator (full `log n` rows — the baseline the
/// α-property version reduces to `O(log α)` live rows).
#[derive(Clone, Debug)]
pub struct L0Estimator {
    k: usize,
    levels: usize,
    p: u64,
    /// `levels+1` rows × `K` counters mod p.
    b: Vec<Vec<u64>>,
    /// Collapsed row of `K' = 2K` counters (Lemma 17's small-L0 path).
    b_small: Vec<u64>,
    h1: bd_hash::KWiseHash,
    h2: bd_hash::KWiseHash,
    h3: bd_hash::KWiseHash,
    h4: bd_hash::KWiseHash,
    u: Vec<u64>,
    rough: RoughL0,
    exact: SmallL0,
}

impl L0Estimator {
    /// Exact-regime threshold: `L0 ≤ 100` is counted exactly (paper §6.2).
    pub const EXACT_CAP: usize = 100;

    /// Build for universe size `n` and accuracy `ε` from a seed.
    pub fn new(seed: u64, n: u64, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = ((1.0 / (epsilon * epsilon)).ceil() as usize).max(16);
        let levels = bd_hash::log2_ceil(n.max(2)) as usize;
        let k3 = (k as u64).pow(3);
        // D = 100·K·log(mM); mM ≤ 2^40 assumed throughout the workspace.
        let p = bd_hash::random_prime_window(&mut rng, (100 * k as u64 * 40).max(64));
        let kind = k_for_eps_l0(epsilon);
        L0Estimator {
            k,
            levels,
            p,
            b: vec![vec![0u64; k]; levels + 1],
            b_small: vec![0u64; 2 * k],
            h1: bd_hash::KWiseHash::pairwise(&mut rng, 1u64 << 61),
            h2: bd_hash::KWiseHash::pairwise(&mut rng, k3),
            h3: bd_hash::KWiseHash::new(&mut rng, kind, k as u64),
            h4: bd_hash::KWiseHash::pairwise(&mut rng, k as u64),
            u: (0..k).map(|_| rng.gen_range(1..p)).collect(),
            rough: RoughL0::for_universe(rng.gen(), n),
            exact: SmallL0::new(rng.gen(), Self::EXACT_CAP, 4),
        }
    }

    /// The bucket count `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        let row = bd_hash::lsb(self.h1.hash(item), self.levels as u32) as usize;
        let row = row.min(self.levels);
        let id = self.h2.hash(item);
        let col = self.h3.hash(id) as usize;
        let scale = self.u[self.h4.hash(id) as usize];
        let mag = bd_hash::prime::mul_mod(delta.unsigned_abs() % self.p, scale, self.p);
        let apply = |cell: &mut u64, p: u64| {
            *cell = if delta >= 0 {
                (*cell + mag) % p
            } else {
                (*cell + p - mag) % p
            };
        };
        apply(&mut self.b[row][col], self.p);
        let col_small =
            (self.h3.hash(id) as usize * 2 + (self.h4.hash(id) as usize & 1)) % self.b_small.len();
        apply(&mut self.b_small[col_small], self.p);
        self.rough.update(item, delta);
        self.exact.update(item, delta);
    }

    /// Occupancy inversion `ln(1−T/K)/ln(1−1/K)` (the balls-in-bins
    /// maximum-likelihood inverse of Lemma 15).
    pub fn invert_occupancy(t: usize, k: usize) -> f64 {
        debug_assert!(k >= 2);
        let t = t.min(k - 1); // clamp: T = K has no finite preimage
        (1.0 - t as f64 / k as f64).ln() / (1.0 - 1.0 / k as f64).ln()
    }

    /// The `(1±ε)` estimate (Theorem 9 + the small-L0 paths).
    pub fn estimate(&self) -> f64 {
        // Exact path for L0 ≤ 100.
        let exact = self.exact.estimate();
        if exact <= Self::EXACT_CAP as u64 / 2 {
            // Well inside the promise: the count is exact w.h.p.
            return exact as f64;
        }
        // Lemma 17 path for L0 < K/16 via the collapsed row.
        let kp = self.b_small.len();
        let t_small = self.b_small.iter().filter(|&&c| c != 0).count();
        let small_est = Self::invert_occupancy(t_small, kp);
        if small_est <= self.k as f64 / 16.0 {
            return small_est;
        }
        // Main path (Theorem 9). The paper selects i* = log(16R/K), sized
        // for its asymptotic constants (R may overshoot L0 by 110×). At
        // laptop-scale K we start from the same formula and then walk to a
        // row whose occupancy is informative (neither saturated nor empty) —
        // the estimate stays `2^{i*+1}·C` for whichever row is used, so the
        // functional form is unchanged (see DESIGN.md §3.1).
        let r = self.rough.estimate() as f64;
        let istar = self.select_row(r);
        let t = self.occupancy(istar);
        let c = Self::invert_occupancy(t, self.k);
        (1u64 << (istar as u32 + 1)) as f64 * c
    }

    /// Non-zero bucket count of row `i`.
    fn occupancy(&self, i: usize) -> usize {
        self.b[i].iter().filter(|&&c| c != 0).count()
    }

    /// Pick the query row: seed from the rough estimate, then adjust while
    /// the row is too loaded (occupancy > 60%) or too empty (< 8 hits).
    fn select_row(&self, rough: f64) -> usize {
        let k = self.k as f64;
        let mut i = if rough <= 8.0 * k {
            0
        } else {
            ((rough / (8.0 * k)).log2().floor() as usize).min(self.levels)
        };
        while i < self.levels && self.occupancy(i) as f64 > 0.6 * k {
            i += 1;
        }
        while i > 0 && self.occupancy(i) < 8.min(self.k / 8) {
            i -= 1;
        }
        i
    }
}

/// `k = Θ(log(1/ε)/log log(1/ε))` independence for `h₃` (Lemma 15's needs).
pub fn k_for_eps_l0(epsilon: f64) -> usize {
    let l = (1.0 / epsilon).ln().max(2.0);
    ((2.0 * l / l.ln().max(1.0)).ceil() as usize).max(4)
}

impl Sketch for L0Estimator {
    fn update(&mut self, item: u64, delta: i64) {
        L0Estimator::update(self, item, delta);
    }
}

impl NormEstimate for L0Estimator {
    /// Estimates `‖f‖₀` to `(1±ε)`.
    fn norm_estimate(&self) -> f64 {
        self.estimate()
    }
}

impl SpaceUsage for L0Estimator {
    fn space(&self) -> SpaceReport {
        let width = bd_hash::width_unsigned(self.p - 1) as u64;
        let cells = ((self.levels + 1) * self.k + self.b_small.len()) as u64;
        let seeds = [&self.h1, &self.h2, &self.h3, &self.h4]
            .iter()
            .map(|h| h.seed_bits() as u64)
            .sum::<u64>()
            + self.u.len() as u64 * width;
        SpaceReport {
            counters: cells,
            counter_bits: cells * width,
            seed_bits: seeds,
            overhead_bits: 0,
        }
        .merge(self.rough.space())
        .merge(self.exact.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::{L0AlphaGen, SensorGen};
    use bd_stream::FrequencyVector;

    #[test]
    fn occupancy_inversion_roundtrip() {
        // Hashing C balls into K bins: E[T] = K(1-(1-1/K)^C); inverting E[T]
        // recovers C exactly.
        let k = 1000usize;
        for c in [10usize, 100, 400] {
            let et = k as f64 * (1.0 - (1.0 - 1.0 / k as f64).powi(c as i32));
            let inv = L0Estimator::invert_occupancy(et.round() as usize, k);
            assert!(
                (inv - c as f64).abs() / (c as f64) < 0.05,
                "C={c}: inverted {inv}"
            );
        }
    }

    #[test]
    fn exact_path_for_tiny_support() {
        let mut est = L0Estimator::new(1, 1 << 16, 0.2);
        for i in 0..30u64 {
            est.update(i * 977, 2);
        }
        assert_eq!(est.estimate(), 30.0);
    }

    #[test]
    fn relative_error_on_l0_streams() {
        let mut ok = 0;
        let trials = 12;
        for seed in 0..trials {
            let stream = L0AlphaGen::new(1 << 20, 3_000, 1.5).generate_seeded(200 + seed);
            let mut est = L0Estimator::new(777 + seed, stream.n, 0.15);
            for u in &stream {
                est.update(u.item, u.delta);
            }
            let truth = FrequencyVector::from_stream(&stream).l0() as f64;
            let e = est.estimate();
            if (e - truth).abs() / truth < 0.35 {
                ok += 1;
            }
        }
        // Theorem 9's success probability is ~3/4 per instance before
        // amplification; demand a clear majority.
        assert!(ok >= 8, "only {ok}/{trials} within tolerance");
    }

    #[test]
    fn handles_sensor_scenario() {
        let stream = SensorGen::new(1 << 22, 2_000, 6_000).generate_seeded(3);
        let mut est = L0Estimator::new(3, stream.n, 0.2);
        for u in &stream {
            est.update(u.item, u.delta);
        }
        let truth = FrequencyVector::from_stream(&stream).l0() as f64;
        let e = est.estimate();
        assert!((e - truth).abs() / truth < 0.5, "estimate {e} vs {truth}");
    }

    #[test]
    fn space_scales_with_log_n() {
        let small = L0Estimator::new(4, 1 << 10, 0.25);
        let large = L0Estimator::new(5, 1 << 30, 0.25);
        assert!(large.space_bits() > small.space_bits());
        assert!(large.b.len() > small.b.len());
    }
}
