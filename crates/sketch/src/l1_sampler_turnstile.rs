//! Baseline precision-sampling L1 sampler (paper §4 setup, from \[38\]).
//!
//! Scale every coordinate by `1/t_i` (k-wise independent uniforms), run a
//! full Countsketch on the scaled stream `z`, and output the item whose
//! `z_i = f_i/t_i` crosses `‖f‖₁/ε` — which happens with probability exactly
//! `ε|f_i|/‖f‖₁`. This is the `O(log² n)`-space baseline; the α-property
//! version (bd-core) replaces the full Countsketch with CSSS and is the
//! paper's Theorem 5. One instance succeeds with probability `Θ(ε)`;
//! [`L1SamplerTurnstile`] wraps `O(ε^{-1} log(1/δ))` instances.

use crate::candidates::CandidateSet;
use crate::countsketch::CountSketch;
use bd_stream::{SampleQuery, Sketch, SpaceReport, SpaceUsage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of querying an L1 sampler (canonical definition lives in the
/// trait layer, `bd_stream::sketch`; re-exported here for compatibility).
pub use bd_stream::SampleOutcome;

/// One precision-sampling instance over a full Countsketch.
#[derive(Clone, Debug)]
pub struct PrecisionSamplerInstance {
    cs: CountSketch<f64>,
    ts: bd_hash::KWiseUniform,
    candidates: CandidateSet,
    epsilon: f64,
    k: usize,
    universe: u64,
    /// Σ_t Δ_t — equals ‖f‖₁ on strict turnstile streams (Figure 3's `r`).
    sum_f: i64,
    /// Σ_t Δ_t/t_{i_t} — equals ‖z‖₁ on strict streams (Figure 3's `q`).
    sum_z: f64,
}

impl PrecisionSamplerInstance {
    /// Build one instance: `k = O(log 1/ε)` column groups, `depth` rows.
    pub fn new(seed: u64, universe: u64, epsilon: f64, depth: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = ((1.0 / epsilon).log2().ceil() as usize).max(4);
        PrecisionSamplerInstance {
            cs: CountSketch::new(rng.gen(), depth, 6 * k),
            ts: bd_hash::KWiseUniform::new(&mut rng, k.max(4)),
            candidates: CandidateSet::new(4 * k),
            epsilon,
            k,
            universe,
            sum_f: 0,
            sum_z: 0.0,
        }
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        let scaled = delta as f64 * self.ts.inv_t(item);
        self.cs.update(item, scaled);
        self.sum_f += delta;
        self.sum_z += scaled;
        let cs = &self.cs;
        self.candidates.offer(item, |i| cs.estimate(i));
    }

    /// Query (Figure 3's Recovery, with practical thresholds): output the
    /// maximal `z` estimate if it crossed `r/ε` and the tail looks sane.
    pub fn query(&self) -> SampleOutcome {
        let r = self.sum_f.unsigned_abs() as f64;
        if r == 0.0 {
            return SampleOutcome::Fail;
        }
        let cs = &self.cs;
        let Some(best) = self.candidates.argmax(|i| cs.estimate(i)) else {
            return SampleOutcome::Fail;
        };
        let z_best = self.cs.estimate(best);
        // Threshold crossing: z_i ≥ r/ε.
        if z_best.abs() < r / self.epsilon {
            return SampleOutcome::Fail;
        }
        // Tail guard (the `v` test): the row-L2 of z minus the recovered top
        // coordinate must not drown the threshold.
        let l2 = self.cs.l2_estimate();
        let resid = (l2 * l2 - z_best * z_best).max(0.0).sqrt();
        if resid > (self.k as f64).sqrt() * (r / self.epsilon) {
            return SampleOutcome::Fail;
        }
        let t = self.ts.t(best);
        SampleOutcome::Sample {
            item: best,
            estimate: t * z_best,
        }
    }
}

impl Sketch for PrecisionSamplerInstance {
    fn update(&mut self, item: u64, delta: i64) {
        PrecisionSamplerInstance::update(self, item, delta);
    }
}

impl SampleQuery for PrecisionSamplerInstance {
    fn sample(&self) -> SampleOutcome {
        self.query()
    }
}

impl SpaceUsage for PrecisionSamplerInstance {
    fn space(&self) -> SpaceReport {
        let mut rep = self.cs.space();
        rep.seed_bits += self.ts.seed_bits() as u64;
        rep.overhead_bits += self.candidates.space_bits(self.universe) + 64 + 64;
        rep
    }
}

/// `O(ε^{-1} log(1/δ))` instances; the first that answers wins.
#[derive(Clone, Debug)]
pub struct L1SamplerTurnstile {
    instances: Vec<PrecisionSamplerInstance>,
}

impl L1SamplerTurnstile {
    /// Build a sampler with failure probability `δ`.
    pub fn new(seed: u64, universe: u64, epsilon: f64, delta: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let copies = (((1.0 / epsilon) * (1.0 / delta).ln()).ceil() as usize).clamp(1, 256);
        let depth = bd_hash::log2_ceil(universe.max(4)) as usize / 2 + 3;
        L1SamplerTurnstile {
            instances: (0..copies)
                .map(|_| PrecisionSamplerInstance::new(rng.gen(), universe, epsilon, depth))
                .collect(),
        }
    }

    /// Apply an update to every instance.
    pub fn update(&mut self, item: u64, delta: i64) {
        for inst in &mut self.instances {
            inst.update(item, delta);
        }
    }

    /// First successful instance's sample.
    pub fn query(&self) -> SampleOutcome {
        for inst in &self.instances {
            if let s @ SampleOutcome::Sample { .. } = inst.query() {
                return s;
            }
        }
        SampleOutcome::Fail
    }

    /// Number of parallel instances.
    pub fn instances(&self) -> usize {
        self.instances.len()
    }
}

impl Sketch for L1SamplerTurnstile {
    fn update(&mut self, item: u64, delta: i64) {
        L1SamplerTurnstile::update(self, item, delta);
    }
}

impl SampleQuery for L1SamplerTurnstile {
    fn sample(&self) -> SampleOutcome {
        self.query()
    }
}

impl SpaceUsage for L1SamplerTurnstile {
    fn space(&self) -> SpaceReport {
        self.instances
            .iter()
            .fold(SpaceReport::default(), |acc, i| acc.merge(i.space()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::BoundedDeletionGen;
    use bd_stream::FrequencyVector;
    use std::collections::HashMap;

    #[test]
    fn samples_follow_l1_distribution() {
        // Small universe with known skew; collect empirical sample counts.
        let stream = BoundedDeletionGen::new(64, 3_000, 2.0).generate_seeded(77);
        let truth = FrequencyVector::from_stream(&stream);
        let l1 = truth.l1() as f64;

        let mut counts: HashMap<u64, usize> = HashMap::new();
        let mut draws = 0usize;
        for seed in 0..300u64 {
            let mut s = L1SamplerTurnstile::new(seed, 64, 0.25, 0.5);
            for u in &stream {
                s.update(u.item, u.delta);
            }
            if let SampleOutcome::Sample { item, .. } = s.query() {
                *counts.entry(item).or_insert(0) += 1;
                draws += 1;
            }
        }
        assert!(draws >= 150, "sampler failed too often: {draws}/300");
        // Total-variation distance between empirical and L1 distribution.
        let mut tv = 0.0;
        for i in truth.support() {
            let p = truth.get(i).unsigned_abs() as f64 / l1;
            let q = counts.get(&i).copied().unwrap_or(0) as f64 / draws as f64;
            tv += (p - q).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.35, "TV distance {tv}");
    }

    #[test]
    fn estimate_has_small_relative_error() {
        let stream = BoundedDeletionGen::new(256, 5_000, 3.0).generate_seeded(5);
        let truth = FrequencyVector::from_stream(&stream);
        let mut checked = 0;
        for seed in 0..60u64 {
            let mut s = L1SamplerTurnstile::new(1000 + seed, 256, 0.25, 0.5);
            for u in &stream {
                s.update(u.item, u.delta);
            }
            if let SampleOutcome::Sample { item, estimate } = s.query() {
                let f = truth.get(item) as f64;
                assert!(f != 0.0, "sampled an item outside the support");
                assert!(
                    (estimate - f).abs() / f.abs() < 0.5,
                    "estimate {estimate} for true {f}"
                );
                checked += 1;
            }
        }
        assert!(checked > 20, "too few successful samples: {checked}");
    }

    #[test]
    fn empty_stream_fails_gracefully() {
        let s = L1SamplerTurnstile::new(1, 64, 0.5, 0.5);
        assert_eq!(s.query(), SampleOutcome::Fail);
    }
}
