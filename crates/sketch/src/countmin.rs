//! Count-Min sketch of Cormode–Muthukrishnan \[22\] (cited in §2.2).
//!
//! `d × w` table of non-negative counters with pairwise row hashes; in the
//! strict turnstile model the point query `min_r A[r][h_r(j)]` overestimates
//! `f_j` by at most `‖f‖₁/w` per row, so the min over `d = O(log 1/δ)` rows
//! is within `ε‖f‖₁` for `w = ⌈e/ε⌉` with probability `1 − δ`. Used as an
//! auxiliary baseline for the heavy-hitter comparisons.

use bd_stream::{MaxMag, SpaceReport, SpaceUsage};
use rand::Rng;

/// A Count-Min sketch (strict turnstile: net counters stay non-negative).
#[derive(Clone, Debug)]
pub struct CountMin {
    depth: usize,
    width: usize,
    table: Vec<i64>,
    hashes: Vec<bd_hash::KWiseHash>,
    max_mag: MaxMag,
}

impl CountMin {
    /// Create a `depth × width` Count-Min sketch.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, depth: usize, width: usize) -> Self {
        assert!(depth >= 1 && width >= 1);
        CountMin {
            depth,
            width,
            table: vec![0; depth * width],
            hashes: (0..depth)
                .map(|_| bd_hash::KWiseHash::pairwise(rng, width as u64))
                .collect(),
            max_mag: MaxMag::default(),
        }
    }

    /// Sized for error `ε‖f‖₁` with failure probability `δ`.
    pub fn with_error<R: Rng + ?Sized>(rng: &mut R, epsilon: f64, delta: f64) -> Self {
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(rng, depth, width)
    }

    /// Apply an update.
    #[inline]
    pub fn update(&mut self, item: u64, delta: i64) {
        for r in 0..self.depth {
            let b = self.hashes[r].hash(item) as usize;
            let cell = &mut self.table[r * self.width + b];
            *cell += delta;
            self.max_mag.observe(*cell);
        }
    }

    /// Point query: `min_r A[r][h_r(j)]` (an overestimate of `f_j` in the
    /// strict turnstile model).
    pub fn estimate(&self, item: u64) -> i64 {
        (0..self.depth)
            .map(|r| self.table[r * self.width + self.hashes[r].hash(item) as usize])
            .min()
            .expect("depth >= 1")
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl SpaceUsage for CountMin {
    fn space(&self) -> SpaceReport {
        SpaceReport {
            counters: (self.depth * self.width) as u64,
            counter_bits: (self.depth * self.width) as u64 * self.max_mag.bits_signed(),
            seed_bits: self.hashes.iter().map(|h| h.seed_bits() as u64).sum(),
            overhead_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::BoundedDeletionGen;
    use bd_stream::FrequencyVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_underestimates_on_strict_streams() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cm = CountMin::new(&mut rng, 5, 64);
        let stream = BoundedDeletionGen::new(1 << 10, 10_000, 3.0).generate(&mut rng);
        let truth = FrequencyVector::from_stream(&stream);
        for u in &stream {
            cm.update(u.item, u.delta);
        }
        for i in truth.support() {
            assert!(cm.estimate(i) >= truth.get(i));
        }
    }

    #[test]
    fn error_within_epsilon_l1() {
        let mut rng = StdRng::seed_from_u64(2);
        let eps = 0.02;
        let mut cm = CountMin::with_error(&mut rng, eps, 0.01);
        let stream = BoundedDeletionGen::new(1 << 12, 40_000, 2.0).generate(&mut rng);
        let truth = FrequencyVector::from_stream(&stream);
        for u in &stream {
            cm.update(u.item, u.delta);
        }
        let bound = eps * truth.l1() as f64;
        let mut bad = 0;
        for i in truth.support() {
            if (cm.estimate(i) - truth.get(i)) as f64 > bound {
                bad += 1;
            }
        }
        assert!(bad <= truth.l0() as usize / 50, "{bad} overestimates");
    }

    #[test]
    fn exact_for_singleton() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cm = CountMin::new(&mut rng, 3, 16);
        cm.update(7, 41);
        assert_eq!(cm.estimate(7), 41);
    }
}
