//! Count-Min sketch of Cormode–Muthukrishnan \[22\] (cited in §2.2).
//!
//! `d × w` table of non-negative counters with pairwise row hashes; in the
//! strict turnstile model the point query `min_r A[r][h_r(j)]` overestimates
//! `f_j` by at most `‖f‖₁/w` per row, so the min over `d = O(log 1/δ)` rows
//! is within `ε‖f‖₁` for `w = ⌈e/ε⌉` with probability `1 − δ`. Used as an
//! auxiliary baseline for the heavy-hitter comparisons.

use bd_hash::RowHashes;
use bd_stream::{
    BatchScratch, MaxMag, Mergeable, PointQuery, PointQueryBatch, Sketch, SketchState, SpaceReport,
    SpaceUsage, StateError, StateReader, StateWriter, Update,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Reusable batched-ingest scratch (no sketch state).
#[derive(Clone, Debug, Default)]
struct IngestScratch {
    agg: BatchScratch,
    plan: RowHashes,
    buckets: Vec<u64>,
}

/// A Count-Min sketch (strict turnstile: net counters stay non-negative).
#[derive(Clone, Debug)]
pub struct CountMin {
    seed: u64,
    depth: usize,
    width: usize,
    table: Vec<i64>,
    hashes: Vec<bd_hash::KWiseHash>,
    max_mag: MaxMag,
    scratch: IngestScratch,
}

impl CountMin {
    /// Create a `depth × width` Count-Min sketch from a seed (identical
    /// seeds and shapes share hash functions — the [`Mergeable`] contract).
    pub fn new(seed: u64, depth: usize, width: usize) -> Self {
        assert!(depth >= 1 && width >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        CountMin {
            seed,
            depth,
            width,
            table: vec![0; depth * width],
            hashes: (0..depth)
                .map(|_| bd_hash::KWiseHash::pairwise(&mut rng, width as u64))
                .collect(),
            max_mag: MaxMag::default(),
            scratch: IngestScratch::default(),
        }
    }

    /// Sized for error `ε‖f‖₁` with failure probability `δ`.
    pub fn with_error(seed: u64, epsilon: f64, delta: f64) -> Self {
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(seed, depth, width)
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Apply an update.
    #[inline]
    pub fn update(&mut self, item: u64, delta: i64) {
        for r in 0..self.depth {
            let b = self.hashes[r].hash(item) as usize;
            let cell = &mut self.table[r * self.width + b];
            *cell += delta;
            self.max_mag.observe(*cell);
        }
    }

    /// Point query: `min_r A[r][h_r(j)]` (an overestimate of `f_j` in the
    /// strict turnstile model).
    pub fn estimate(&self, item: u64) -> i64 {
        (0..self.depth)
            .map(|r| self.table[r * self.width + self.hashes[r].hash(item) as usize])
            .min()
            .expect("depth >= 1")
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Sketch for CountMin {
    fn update(&mut self, item: u64, delta: i64) {
        CountMin::update(self, item, delta);
    }

    /// Batched ingestion: duplicate items collapse to one net delta
    /// (reusable aggregation table), then each row's pairwise polynomial is
    /// evaluated over the whole chunk of distinct items in one
    /// interleaved-Horner pass — zero steady-state allocations. Estimates
    /// are bit-identical to the sequential loop by linearity; the `max_mag`
    /// width tracker may record *smaller* peaks (intra-chunk cancellations
    /// never hit the table), so reported counter widths reflect the
    /// magnitudes actually written, which can depend on the chunking.
    fn update_batch(&mut self, batch: &[Update]) {
        let Self {
            depth,
            width,
            table,
            hashes,
            max_mag,
            scratch,
            ..
        } = self;
        let IngestScratch { agg, plan, buckets } = scratch;
        let agg = agg.aggregate_net(batch);
        let live = || agg.iter().filter(|&&(_, net)| net != 0);
        plan.load(live().map(|&(item, _)| item));
        if plan.is_empty() {
            return;
        }
        for r in 0..*depth {
            plan.eval_buckets(&hashes[r], buckets);
            let row = &mut table[r * *width..(r + 1) * *width];
            for (idx, &(_, net)) in live().enumerate() {
                let cell = &mut row[buckets[idx] as usize];
                *cell += net;
                max_mag.observe(*cell);
            }
        }
    }
}

impl PointQuery for CountMin {
    fn point(&self, item: u64) -> f64 {
        self.estimate(item) as f64
    }
}

impl PointQueryBatch for CountMin {
    /// Every row's pairwise polynomial is evaluated over the whole query set
    /// in one interleaved-Horner pass (call-local plan, receiver stays
    /// shared), then each item takes its min over rows. Bit-identical per
    /// item to [`CountMin::estimate`] (`min` over `i64` is order-free).
    fn point_many(&self, items: &[u64], out: &mut Vec<f64>) {
        let mut plan = RowHashes::default();
        plan.load(items.iter().copied());
        let mut buckets = Vec::new();
        for r in 0..self.depth {
            plan.append_buckets(&self.hashes[r], &mut buckets);
        }
        let m = items.len();
        out.reserve(m);
        for idx in 0..m {
            let est = (0..self.depth)
                .map(|r| self.table[r * self.width + buckets[r * m + idx] as usize])
                .min()
                .expect("depth >= 1");
            out.push(est as f64);
        }
    }
}

impl Mergeable for CountMin {
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.seed == other.seed && self.depth == other.depth && self.width == other.width,
            "CountMin merge requires identically seeded sketches"
        );
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += *b;
            self.max_mag.observe(*a);
        }
    }
}

impl SketchState for CountMin {
    /// Mutable state is the counter table plus the width watermark.
    fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.max_mag.max());
        w.i64_slice(&self.table);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let mut mag = MaxMag::default();
        mag.observe_mag(r.u64()?);
        self.max_mag = mag;
        r.i64_slice_into(&mut self.table)
    }
}

impl SpaceUsage for CountMin {
    fn space(&self) -> SpaceReport {
        SpaceReport {
            counters: (self.depth * self.width) as u64,
            counter_bits: (self.depth * self.width) as u64 * self.max_mag.bits_signed(),
            seed_bits: self.hashes.iter().map(|h| h.seed_bits() as u64).sum(),
            overhead_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::BoundedDeletionGen;
    use bd_stream::{FrequencyVector, StreamRunner};

    #[test]
    fn never_underestimates_on_strict_streams() {
        let mut cm = CountMin::new(1, 5, 64);
        let stream = BoundedDeletionGen::new(1 << 10, 10_000, 3.0).generate_seeded(1);
        let truth = FrequencyVector::from_stream(&stream);
        for u in &stream {
            cm.update(u.item, u.delta);
        }
        for i in truth.support() {
            assert!(cm.estimate(i) >= truth.get(i));
        }
    }

    #[test]
    fn error_within_epsilon_l1() {
        let eps = 0.02;
        let mut cm = CountMin::with_error(2, eps, 0.01);
        let stream = BoundedDeletionGen::new(1 << 12, 40_000, 2.0).generate_seeded(2);
        let truth = FrequencyVector::from_stream(&stream);
        for u in &stream {
            cm.update(u.item, u.delta);
        }
        let bound = eps * truth.l1() as f64;
        let mut bad = 0;
        for i in truth.support() {
            if (cm.estimate(i) - truth.get(i)) as f64 > bound {
                bad += 1;
            }
        }
        assert!(bad <= truth.l0() as usize / 50, "{bad} overestimates");
    }

    #[test]
    fn exact_for_singleton() {
        let mut cm = CountMin::new(3, 3, 16);
        cm.update(7, 41);
        assert_eq!(cm.estimate(7), 41);
    }

    #[test]
    fn batched_ingestion_is_bit_identical() {
        let stream = BoundedDeletionGen::new(1 << 10, 20_000, 3.0).generate_seeded(4);
        let mut per_update = CountMin::new(5, 5, 64);
        let mut batched = per_update.clone();
        StreamRunner::unbatched().run(&mut per_update, &stream);
        StreamRunner::new().run(&mut batched, &stream);
        for i in 0..1024u64 {
            assert_eq!(per_update.estimate(i), batched.estimate(i));
        }
    }

    #[test]
    fn merge_equals_single_pass() {
        let stream = BoundedDeletionGen::new(1 << 10, 10_000, 2.0).generate_seeded(6);
        let mid = stream.len() / 2;
        let mut whole = CountMin::new(7, 5, 64);
        let mut left = whole.clone();
        let mut right = whole.clone();
        for u in &stream {
            whole.update(u.item, u.delta);
        }
        for u in &stream.updates[..mid] {
            left.update(u.item, u.delta);
        }
        for u in &stream.updates[mid..] {
            right.update(u.item, u.delta);
        }
        left.merge_from(&right);
        for i in 0..1024u64 {
            assert_eq!(whole.estimate(i), left.estimate(i));
        }
    }
}
