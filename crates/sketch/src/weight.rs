//! Counter weight abstraction.
//!
//! Most sketches count integers, but precision sampling (paper §4) scales
//! updates by `1/t_i ∈ [1, ∞)` and therefore needs real-valued cells. The
//! [`Weight`] trait lets table-based sketches share one implementation across
//! `i64` (exact, bit-width-accountable) and `f64` (scaled) counters.

/// A counter cell type: closed under addition/negation, comparable by
/// magnitude, and convertible to `f64` for medians and norms.
pub trait Weight: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// The zero counter.
    fn zero() -> Self;
    /// Add another value into this cell.
    fn add_assign(&mut self, rhs: Self);
    /// Negate.
    fn neg(self) -> Self;
    /// Absolute value as `f64` (for medians, norms, space accounting).
    fn abs_f64(self) -> f64;
    /// Signed value as `f64`.
    fn to_f64(self) -> f64;
    /// Build from an `i64` stream delta.
    fn from_i64(v: i64) -> Self;
    /// The cell as a stable 64-bit pattern for persistence
    /// (two's-complement for integers, IEEE-754 bits for floats):
    /// `from_bits64(to_bits64(w)) == w` bit for bit.
    fn to_bits64(self) -> u64;
    /// Rebuild a cell from [`Weight::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

impl Weight for i64 {
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self += rhs;
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn abs_f64(self) -> f64 {
        self.unsigned_abs() as f64
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_i64(v: i64) -> Self {
        v
    }
    #[inline]
    fn to_bits64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

impl Weight for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self += rhs;
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn abs_f64(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// Median of a slice by `f64` ordering; for even lengths returns the lower
/// median (the convention used throughout the sketch literature).
pub fn median_f64(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mid = (values.len() - 1) / 2;
    values
        .select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("NaN in median"))
        .1
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_ops_i64() {
        let mut w = i64::zero();
        w.add_assign(5);
        w.add_assign((-2).neg());
        assert_eq!(w, 7);
        assert_eq!(w.abs_f64(), 7.0);
        assert_eq!(i64::from_i64(-3), -3);
    }

    #[test]
    fn weight_ops_f64() {
        let mut w = f64::zero();
        w.add_assign(2.5);
        assert_eq!(w.neg(), -2.5);
        assert_eq!((-2.5f64).abs_f64(), 2.5);
    }

    #[test]
    fn median_odd_even() {
        let mut v = [3.0, 1.0, 2.0];
        assert_eq!(median_f64(&mut v), 2.0);
        let mut v = [4.0, 1.0, 2.0, 3.0];
        assert_eq!(median_f64(&mut v), 2.0); // lower median
        let mut v = [9.0];
        assert_eq!(median_f64(&mut v), 9.0);
    }
}
