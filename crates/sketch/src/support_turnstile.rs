//! Baseline support sampler for turnstile streams (paper §7 setup, \[38\]).
//!
//! Subsample the universe at `log n` nested levels `I_j = {i : h(i) ≤ 2^j}`
//! and keep an s-sparse recovery sketch of `f|I_j` at every level. At query
//! time the level whose live support fits the recovery budget decodes
//! exactly and its non-zero coordinates are returned. The α-property version
//! (bd-core, Figure 8) keeps only `O(log α)` of these levels alive at a
//! time; this baseline keeps all `log n`, which is the `Ω(k log²(n/k))`
//! regime of \[41\].

use crate::sparse_recovery::{Recovery, SparseRecovery};
use bd_hash::RowHashes;
use bd_stream::{BatchScratch, Sketch, SpaceReport, SpaceUsage, Update};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reusable batched-ingest scratch (no sketch state).
#[derive(Clone, Debug, Default)]
struct IngestScratch {
    agg: BatchScratch,
    plan: RowHashes,
    hashes: Vec<u64>,
}

/// The full-level-set support sampler.
#[derive(Clone, Debug)]
pub struct SupportSamplerTurnstile {
    h: bd_hash::KWiseHash,
    levels: Vec<SparseRecovery>,
    log_n: usize,
    k: usize,
    scratch: IngestScratch,
}

impl SupportSamplerTurnstile {
    /// Build for universe `n`, requesting at least `min(k, ‖f‖₀)` support
    /// items per query; recovery budget `s = Θ(k)` per level.
    pub fn new(seed: u64, n: u64, k: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let log_n = bd_hash::log2_ceil(n.max(2)) as usize;
        let s = (4 * k).max(8);
        SupportSamplerTurnstile {
            h: bd_hash::KWiseHash::pairwise(&mut rng, bd_hash::next_pow2(n)),
            levels: (0..=log_n)
                .map(|_| SparseRecovery::new(rng.gen(), n, s))
                .collect(),
            log_n,
            k,
            scratch: IngestScratch::default(),
        }
    }

    /// The request size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Apply an update. Item `i` lives in levels `j ≥ ⌈log2(h(i)+1)⌉`.
    pub fn update(&mut self, item: u64, delta: i64) {
        let hv = self.h.hash(item);
        let first = if hv == 0 {
            0
        } else {
            (bd_hash::log2_floor(hv) + 1) as usize
        };
        for j in first..=self.log_n {
            self.levels[j].update(item, delta);
        }
    }

    /// Decode: union of all successfully recovered levels' supports.
    pub fn query(&self) -> Vec<(u64, i64)> {
        let mut found: HashMap<u64, i64> = HashMap::new();
        for lvl in &self.levels {
            if let Recovery::Sparse(m) = lvl.decode() {
                for (i, v) in m {
                    found.insert(i, v);
                }
            }
        }
        let mut out: Vec<(u64, i64)> = found.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Convenience: just the recovered items, up to the whole union.
    pub fn support(&self) -> Vec<u64> {
        self.query().into_iter().map(|(i, _)| i).collect()
    }
}

impl Sketch for SupportSamplerTurnstile {
    fn update(&mut self, item: u64, delta: i64) {
        SupportSamplerTurnstile::update(self, item, delta);
    }

    /// Batched ingestion: collapse each chunk to per-item net deltas before
    /// touching the levels (reusable aggregation table + chunk-batched
    /// universe hash — zero steady-state allocations). Every level sketch is
    /// linear, so applying the net delta once is state-identical to
    /// replaying the duplicates — but pays one universe hash and one
    /// `O(log n)`-level walk (each with its own per-row recovery hashing)
    /// per *distinct* item instead of per update. On Zipfian chunks this is
    /// most of the ingest cost.
    fn update_batch(&mut self, batch: &[Update]) {
        let Self {
            h,
            levels,
            log_n,
            scratch,
            ..
        } = self;
        let IngestScratch { agg, plan, hashes } = scratch;
        let agg = agg.aggregate_net(batch);
        let live = || agg.iter().filter(|&&(_, net)| net != 0);
        plan.load(live().map(|&(item, _)| item));
        plan.eval_buckets(h, hashes);
        for (idx, &(item, delta)) in live().enumerate() {
            let hv = hashes[idx];
            let first = if hv == 0 {
                0
            } else {
                (bd_hash::log2_floor(hv) + 1) as usize
            };
            for lvl in &mut levels[first..=*log_n] {
                lvl.update(item, delta);
            }
        }
    }
}

impl SpaceUsage for SupportSamplerTurnstile {
    fn space(&self) -> SpaceReport {
        let mut rep = SpaceReport {
            seed_bits: self.h.seed_bits() as u64,
            ..Default::default()
        };
        for lvl in &self.levels {
            rep = rep.merge(lvl.space());
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::L0AlphaGen;
    use bd_stream::FrequencyVector;

    #[test]
    fn recovers_enough_support() {
        let stream = L0AlphaGen::new(1 << 16, 400, 2.0).generate_seeded(1);
        let truth = FrequencyVector::from_stream(&stream);
        let mut s = SupportSamplerTurnstile::new(1, stream.n, 16);
        for u in &stream {
            s.update(u.item, u.delta);
        }
        let got = s.query();
        assert!(got.len() >= 16, "only {} items recovered", got.len());
        for (i, v) in got {
            assert_eq!(truth.get(i), v, "recovered value must be exact");
            assert!(v != 0);
        }
    }

    #[test]
    fn small_support_recovered_entirely() {
        let mut s = SupportSamplerTurnstile::new(2, 1 << 20, 8);
        for i in 0..5u64 {
            s.update(i * 99_991, (i + 1) as i64);
        }
        let got = s.support();
        assert_eq!(got.len(), 5, "‖f‖₀ < k ⇒ all of the support comes back");
    }

    #[test]
    fn deleted_items_never_returned() {
        let mut s = SupportSamplerTurnstile::new(3, 1 << 16, 8);
        for i in 0..50u64 {
            s.update(i, 1);
        }
        for i in 0..45u64 {
            s.update(i, -1);
        }
        let got = s.support();
        assert!(
            got.iter().all(|&i| i >= 45),
            "deleted item returned: {got:?}"
        );
        assert!(got.len() >= 5);
    }

    #[test]
    fn empty_stream_returns_nothing() {
        let s = SupportSamplerTurnstile::new(4, 1 << 10, 4);
        assert!(s.query().is_empty());
    }
}
