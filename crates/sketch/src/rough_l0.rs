//! RoughL0Estimator (paper Lemma 14, from \[40\]): a constant-factor L0
//! estimate `R ∈ [L0, 110·L0]` for turnstile streams.
//!
//! Items are subsampled to level `j = lsb(h(i))` (so substream `S_j` has
//! `E[L0(S_j)] = L0/2^{j+1}`), and each level runs a [`SmallL0`] detector.
//! The estimate is `(20000/99)·2^{j*}` for the deepest level reporting
//! `L0(S_j) > 8`, and 50 if none does. The theory sizes each detector with
//! `c = 132, η = 1/16`; `Config::practical()` keeps the same shape with
//! smaller tables (the detector's count only errs low, so the threshold
//! test stays one-sided).

use crate::small_l0::SmallL0;
use bd_stream::{NormEstimate, Sketch, SpaceReport, SpaceUsage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sizing for the per-level detectors.
#[derive(Clone, Copy, Debug)]
pub struct RoughL0Config {
    /// Detector cap `c` (Lemma 21 promise parameter).
    pub cap: usize,
    /// Detector repetitions (`O(log 1/η)`).
    pub reps: usize,
    /// Buckets per detector repetition.
    pub buckets: usize,
    /// Number of subsampling levels (`log n` in the paper).
    pub levels: usize,
}

impl RoughL0Config {
    /// The paper's constants: `c = 132`, `η = 1/16`, `c²` buckets.
    pub fn theory(levels: usize) -> Self {
        RoughL0Config {
            cap: 132,
            reps: 4,
            buckets: 132 * 132,
            levels,
        }
    }

    /// Laptop-scale tables with the same functional shape. 256 buckets
    /// undercount a 132-item level by ~25%, which cannot flip the one-sided
    /// "count > 8" test (true counts near the decision point are ≥ 28).
    pub fn practical(levels: usize) -> Self {
        RoughL0Config {
            cap: 132,
            reps: 2,
            buckets: 256,
            levels,
        }
    }
}

/// The rough L0 estimator.
#[derive(Clone, Debug)]
pub struct RoughL0 {
    level_hash: bd_hash::KWiseHash,
    detectors: Vec<SmallL0>,
    levels: usize,
}

impl RoughL0 {
    /// The guaranteed over-approximation ratio (Lemma 14).
    pub const RATIO: f64 = 110.0;
    /// The per-level decision threshold.
    pub const THRESHOLD: u64 = 8;
    /// The estimate scale `20000/99`.
    pub const SCALE: f64 = 20000.0 / 99.0;

    /// Build from a configuration and a seed.
    pub fn new(seed: u64, cfg: RoughL0Config) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        RoughL0 {
            level_hash: bd_hash::KWiseHash::pairwise(&mut rng, 1u64 << 61),
            detectors: (0..=cfg.levels)
                .map(|_| SmallL0::with_buckets(rng.gen(), cfg.cap, cfg.reps, cfg.buckets))
                .collect(),
            levels: cfg.levels,
        }
    }

    /// Default practical sizing for a universe of size `n`.
    pub fn for_universe(seed: u64, n: u64) -> Self {
        let levels = bd_hash::log2_ceil(n.max(2)) as usize;
        Self::new(seed, RoughL0Config::practical(levels))
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        let lvl = bd_hash::lsb(self.level_hash.hash(item), self.levels as u32) as usize;
        self.detectors[lvl.min(self.levels)].update(item, delta);
    }

    /// The estimate `R`; `∈ [L0, 110·L0]` with constant probability.
    pub fn estimate(&self) -> u64 {
        let mut jstar: Option<usize> = None;
        for (j, det) in self.detectors.iter().enumerate() {
            if det.exceeds(Self::THRESHOLD) {
                jstar = Some(j);
            }
        }
        match jstar {
            Some(j) => (Self::SCALE * (1u64 << j.min(55)) as f64).round() as u64,
            None => 50,
        }
    }
}

impl Sketch for RoughL0 {
    fn update(&mut self, item: u64, delta: i64) {
        RoughL0::update(self, item, delta);
    }
}

impl NormEstimate for RoughL0 {
    /// Estimates `‖f‖₀` within `[L0, RATIO·L0]` (constant probability).
    fn norm_estimate(&self) -> f64 {
        self.estimate() as f64
    }
}

impl SpaceUsage for RoughL0 {
    fn space(&self) -> SpaceReport {
        let mut rep = SpaceReport {
            seed_bits: self.level_hash.seed_bits() as u64,
            ..Default::default()
        };
        for d in &self.detectors {
            rep = rep.merge(d.space());
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::gen::L0AlphaGen;
    use bd_stream::FrequencyVector;

    #[test]
    fn sandwich_on_turnstile_streams() {
        let mut ok = 0;
        let trials = 20;
        for seed in 0..trials {
            let stream = L0AlphaGen::new(1 << 20, 200 + 50 * seed, 2.0).generate_seeded(seed);
            let mut r = RoughL0::for_universe(seed, stream.n);
            for u in &stream {
                r.update(u.item, u.delta);
            }
            let l0 = FrequencyVector::from_stream(&stream).l0();
            let est = r.estimate();
            if est >= l0 && est as f64 <= RoughL0::RATIO * l0 as f64 {
                ok += 1;
            }
        }
        assert!(ok >= 15, "sandwich held in only {ok}/{trials} trials");
    }

    #[test]
    fn tiny_l0_returns_floor() {
        let mut r = RoughL0::for_universe(5, 1 << 16);
        r.update(3, 1);
        r.update(9, 2);
        let est = r.estimate();
        assert!((2..=220).contains(&est) || est == 50, "estimate {est}");
    }

    #[test]
    fn deletions_shrink_the_estimate() {
        let mut r = RoughL0::for_universe(6, 1 << 16);
        for i in 0..5_000u64 {
            r.update(i, 1);
        }
        let big = r.estimate();
        for i in 0..4_990u64 {
            r.update(i, -1);
        }
        let small = r.estimate();
        assert!(
            small < big,
            "estimate must track deletions: {small} vs {big}"
        );
    }
}
