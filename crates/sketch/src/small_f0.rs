//! Exact L0 when few distinct items ever appear (paper Lemma 19).
//!
//! With `F0 ≤ c` promised, store one modular counter per *hashed identity*
//! seen (pairwise hash into `Θ(c²)` to keep identities distinct, counters
//! mod a random prime). If more than `c` identities appear, report `LARGE` —
//! that certifies `F0 > c`. The α-property L0 algorithms use this with
//! `c = 8 log(n)/log log(n)` to cover the regime where the rough F0 tracker
//! has no guarantee.

use bd_stream::{Sketch, SpaceReport, SpaceUsage};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Outcome of the small-F0 counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmallF0Result {
    /// `F0 ≤ c` held; this is the exact `L0` (w.p. 49/50 per Lemma 19).
    Exact(u64),
    /// More than `c` distinct identities appeared: `F0 > c` certified.
    Large,
}

/// The Lemma 19 structure.
#[derive(Clone, Debug)]
pub struct SmallF0 {
    cap: usize,
    hash: bd_hash::KWiseHash,
    p: u64,
    counters: HashMap<u64, u64>,
    large: bool,
}

impl SmallF0 {
    /// Build with promise parameter `c` (`cap`).
    pub fn new(seed: u64, cap: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = cap.max(1) as u64;
        // Pairwise hash into C = Θ(c²) keeps ≤ c identities collision-free
        // with probability 99/100 (scaling constant 100 as in the Lemma).
        let range = (100 * c * c).max(16);
        // Prime window [P, P^3], P = 100²·c·log(mM); mM ≤ 2^40 assumed.
        let p = bd_hash::random_prime_window(&mut rng, (100 * 100 * c * 40).max(64));
        SmallF0 {
            cap,
            hash: bd_hash::KWiseHash::pairwise(&mut rng, range),
            p,
            counters: HashMap::new(),
            large: false,
        }
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        if self.large {
            return; // LARGE is absorbing; no more state is kept
        }
        let key = self.hash.hash(item);
        let mag = delta.unsigned_abs() % self.p;
        let cell = self.counters.entry(key).or_insert(0);
        *cell = if delta >= 0 {
            (*cell + mag) % self.p
        } else {
            (*cell + self.p - mag) % self.p
        };
        if self.counters.len() > self.cap {
            self.large = true;
            self.counters = HashMap::new(); // drop payload, keep the verdict
        }
    }

    /// Query the structure.
    pub fn result(&self) -> SmallF0Result {
        if self.large {
            SmallF0Result::Large
        } else {
            SmallF0Result::Exact(self.counters.values().filter(|&&c| c != 0).count() as u64)
        }
    }

    /// The promise parameter `c`.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl Sketch for SmallF0 {
    fn update(&mut self, item: u64, delta: i64) {
        SmallF0::update(self, item, delta);
    }
}

impl SpaceUsage for SmallF0 {
    fn space(&self) -> SpaceReport {
        // ≤ c identities of log(C) bits plus counters of log(p) bits.
        let entries = self.counters.len() as u64;
        let key_bits = bd_hash::width_unsigned(self.hash.range().max(2) - 1) as u64;
        let ctr_bits = bd_hash::width_unsigned(self.p - 1) as u64;
        SpaceReport {
            counters: entries,
            counter_bits: entries * (key_bits + ctr_bits),
            seed_bits: self.hash.seed_bits() as u64 + bd_hash::width_unsigned(self.p) as u64,
            overhead_bits: 1, // the LARGE flag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_support() {
        let mut s = SmallF0::new(1, 64);
        for i in 0..30u64 {
            s.update(i * 101, 2);
        }
        for i in 0..10u64 {
            s.update(i * 101, -2); // fully delete ten of them
        }
        assert_eq!(s.result(), SmallF0Result::Exact(20));
    }

    #[test]
    fn large_is_certified_and_absorbing() {
        let mut s = SmallF0::new(2, 8);
        for i in 0..100u64 {
            s.update(i, 1);
        }
        assert_eq!(s.result(), SmallF0Result::Large);
        // further updates keep it LARGE
        s.update(3, -1);
        assert_eq!(s.result(), SmallF0Result::Large);
    }

    #[test]
    fn repeated_identity_is_one_key() {
        let mut s = SmallF0::new(3, 4);
        for _ in 0..1000 {
            s.update(42, 1);
        }
        assert_eq!(s.result(), SmallF0Result::Exact(1));
    }

    #[test]
    fn empty_is_zero() {
        let s = SmallF0::new(4, 4);
        assert_eq!(s.result(), SmallF0Result::Exact(0));
    }
}
