//! Exact L0 when few distinct items ever appear (paper Lemma 19).
//!
//! With `F0 ≤ c` promised, store one modular counter per *hashed identity*
//! seen (pairwise hash into `Θ(c²)` to keep identities distinct, counters
//! mod a random prime). If more than `c` identities appear, report `LARGE` —
//! that certifies `F0 > c`. The α-property L0 algorithms use this with
//! `c = 8 log(n)/log log(n)` to cover the regime where the rough F0 tracker
//! has no guarantee.

use bd_stream::{
    Mergeable, Sketch, SketchState, SpaceReport, SpaceUsage, StateError, StateReader, StateWriter,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Outcome of the small-F0 counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmallF0Result {
    /// `F0 ≤ c` held; this is the exact `L0` (w.p. 49/50 per Lemma 19).
    Exact(u64),
    /// More than `c` distinct identities appeared: `F0 > c` certified.
    Large,
}

/// The Lemma 19 structure.
#[derive(Clone, Debug)]
pub struct SmallF0 {
    cap: usize,
    hash: bd_hash::KWiseHash,
    p: u64,
    counters: HashMap<u64, u64>,
    large: bool,
}

impl SmallF0 {
    /// Build with promise parameter `c` (`cap`).
    pub fn new(seed: u64, cap: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = cap.max(1) as u64;
        // Pairwise hash into C = Θ(c²) keeps ≤ c identities collision-free
        // with probability 99/100 (scaling constant 100 as in the Lemma).
        let range = (100 * c * c).max(16);
        // Prime window [P, P^3], P = 100²·c·log(mM); mM ≤ 2^40 assumed.
        let p = bd_hash::random_prime_window(&mut rng, (100 * 100 * c * 40).max(64));
        SmallF0 {
            cap,
            hash: bd_hash::KWiseHash::pairwise(&mut rng, range),
            p,
            counters: HashMap::new(),
            large: false,
        }
    }

    /// Apply an update.
    pub fn update(&mut self, item: u64, delta: i64) {
        if self.large {
            return; // LARGE is absorbing; no more state is kept
        }
        let key = self.hash.hash(item);
        let mag = delta.unsigned_abs() % self.p;
        let cell = self.counters.entry(key).or_insert(0);
        *cell = if delta >= 0 {
            (*cell + mag) % self.p
        } else {
            (*cell + self.p - mag) % self.p
        };
        if self.counters.len() > self.cap {
            self.large = true;
            self.counters = HashMap::new(); // drop payload, keep the verdict
        }
    }

    /// Query the structure.
    pub fn result(&self) -> SmallF0Result {
        if self.large {
            SmallF0Result::Large
        } else {
            SmallF0Result::Exact(self.counters.values().filter(|&&c| c != 0).count() as u64)
        }
    }

    /// The promise parameter `c`.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl Sketch for SmallF0 {
    fn update(&mut self, item: u64, delta: i64) {
        SmallF0::update(self, item, delta);
    }
}

impl Mergeable for SmallF0 {
    /// Union-add the per-identity counters mod `p`. The key set only ever
    /// grows during a pass (counters stay in the map at zero), so "LARGE at
    /// some point" ⇔ "more than `cap` identities in total" — which makes the
    /// merged verdict, and the merged counters when small, bit-identical to
    /// a single pass over the concatenation in every regime.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.p == other.p && self.cap == other.cap,
            "SmallF0 merge requires identically seeded sketches"
        );
        if self.large {
            return;
        }
        if other.large {
            self.large = true;
            self.counters = HashMap::new();
            return;
        }
        for (&key, &val) in &other.counters {
            let cell = self.counters.entry(key).or_insert(0);
            *cell = (*cell + val) % self.p;
        }
        if self.counters.len() > self.cap {
            self.large = true;
            self.counters = HashMap::new();
        }
    }
}

impl SketchState for SmallF0 {
    /// Mutable state: the LARGE verdict plus the per-identity mod-`p`
    /// counters (encoded sorted by hashed key for determinism).
    fn save_state(&self, w: &mut StateWriter) {
        w.u8(self.large as u8);
        let mut entries: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        w.seq(entries.len());
        for (k, v) in entries {
            w.u64(k);
            w.u64(v);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let large = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(StateError::Corrupt("smallf0 verdict flag")),
        };
        let n = r.seq(16)?;
        if large && n != 0 {
            return Err(StateError::Corrupt("smallf0 LARGE keeps no counters"));
        }
        self.large = large;
        self.counters.clear();
        for _ in 0..n {
            let key = r.u64()?;
            let val = r.u64()?;
            if val >= self.p {
                return Err(StateError::Corrupt("smallf0 counter out of field"));
            }
            self.counters.insert(key, val);
        }
        Ok(())
    }
}

impl SpaceUsage for SmallF0 {
    fn space(&self) -> SpaceReport {
        // ≤ c identities of log(C) bits plus counters of log(p) bits.
        let entries = self.counters.len() as u64;
        let key_bits = bd_hash::width_unsigned(self.hash.range().max(2) - 1) as u64;
        let ctr_bits = bd_hash::width_unsigned(self.p - 1) as u64;
        SpaceReport {
            counters: entries,
            counter_bits: entries * (key_bits + ctr_bits),
            seed_bits: self.hash.seed_bits() as u64 + bd_hash::width_unsigned(self.p) as u64,
            overhead_bits: 1, // the LARGE flag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_support() {
        let mut s = SmallF0::new(1, 64);
        for i in 0..30u64 {
            s.update(i * 101, 2);
        }
        for i in 0..10u64 {
            s.update(i * 101, -2); // fully delete ten of them
        }
        assert_eq!(s.result(), SmallF0Result::Exact(20));
    }

    #[test]
    fn large_is_certified_and_absorbing() {
        let mut s = SmallF0::new(2, 8);
        for i in 0..100u64 {
            s.update(i, 1);
        }
        assert_eq!(s.result(), SmallF0Result::Large);
        // further updates keep it LARGE
        s.update(3, -1);
        assert_eq!(s.result(), SmallF0Result::Large);
    }

    #[test]
    fn repeated_identity_is_one_key() {
        let mut s = SmallF0::new(3, 4);
        for _ in 0..1000 {
            s.update(42, 1);
        }
        assert_eq!(s.result(), SmallF0Result::Exact(1));
    }

    #[test]
    fn empty_is_zero() {
        let s = SmallF0::new(4, 4);
        assert_eq!(s.result(), SmallF0Result::Exact(0));
    }

    #[test]
    fn merge_equals_single_pass_and_detects_large() {
        let mut whole = SmallF0::new(5, 16);
        let mut a = SmallF0::new(5, 16);
        let mut b = SmallF0::new(5, 16);
        for i in 0..12u64 {
            whole.update(i * 31, 2);
            if i % 2 == 0 { &mut a } else { &mut b }.update(i * 31, 2);
        }
        // Delete one item entirely in the other shard.
        whole.update(0, -2);
        b.update(0, -2);
        a.merge_from(&b);
        assert_eq!(a.result(), whole.result());
        assert_eq!(a.result(), SmallF0Result::Exact(11));

        // The union crossing the cap certifies LARGE even when each shard
        // stayed small.
        let mut c = SmallF0::new(6, 8);
        let mut d = SmallF0::new(6, 8);
        for i in 0..6u64 {
            c.update(i, 1);
            d.update(100 + i, 1);
        }
        c.merge_from(&d);
        assert_eq!(c.result(), SmallF0Result::Large);
    }
}
