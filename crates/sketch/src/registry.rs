//! Registration of the turnstile baselines into the workspace sketch
//! registry (`bd_stream::registry`).
//!
//! [`register`] installs a builder and a capability descriptor for every
//! `Sketch` implementation in this crate. Builders are pure functions of the
//! [`SketchSpec`]: shapes derive from `(n, ε, δ)` by the formulas noted in
//! each family's `space` string, with the spec's optional `k`/`depth`/`width`
//! fields as the experiment-sweep overrides. All randomness derives from
//! `spec.seed`, so equal specs build bit-identical sketches.
//!
//! This module also hosts the baselines' dynamic-capability wiring
//! ([`bd_stream::impl_dyn_sketch!`]) and the few capability-trait impls that
//! exist for the registry's sake (self-inner-product as an F2
//! [`NormEstimate`], recovery results as [`SupportQuery`]).

use bd_stream::registry::{Capabilities, FamilyInfo, Registry, SpaceInputs};
use bd_stream::spec::{Regime, SketchFamily, SketchSpec};
use bd_stream::{impl_dyn_sketch, Item, NormEstimate, SupportQuery};

use crate::ams::{AmsFamily, AmsSketch, IpCountSketch, IpFamily};
use crate::countmin::CountMin;
use crate::countsketch::CountSketch;
use crate::l0_turnstile::L0Estimator;
use crate::l1_sampler_turnstile::{L1SamplerTurnstile, PrecisionSamplerInstance};
use crate::l1_turnstile::{LogCosL1, MedianL1};
use crate::morris::MorrisCounter;
use crate::rough_f0::RoughF0;
use crate::rough_l0::RoughL0;
use crate::small_f0::{SmallF0, SmallF0Result};
use crate::small_l0::SmallL0;
use crate::sparse_recovery::{Recovery, SparseRecovery};
use crate::support_turnstile::SupportSamplerTurnstile;

// ---------------------------------------------------------------------------
// Capability impls that exist for the registry's generic query surface.
// ---------------------------------------------------------------------------

/// AMS rows estimate `‖f‖₂²` (median over 8 row groups).
impl NormEstimate for AmsSketch {
    fn norm_estimate(&self) -> f64 {
        self.f2(8)
    }
}

/// An inner-product table against itself estimates `‖f‖₂² = ⟨f, f⟩`.
impl NormEstimate for IpCountSketch {
    fn norm_estimate(&self) -> f64 {
        self.inner_product(self)
    }
}

/// Exact F0 under the promise; `+∞` signals the absorbing LARGE state.
impl NormEstimate for SmallF0 {
    fn norm_estimate(&self) -> f64 {
        match self.result() {
            SmallF0Result::Exact(v) => v as f64,
            SmallF0Result::Large => f64::INFINITY,
        }
    }
}

impl SupportQuery for SupportSamplerTurnstile {
    fn support_query(&self) -> Vec<Item> {
        self.support()
    }
}

/// Sparse recovery recovers its support exactly (empty when DENSE).
impl SupportQuery for SparseRecovery {
    fn support_query(&self) -> Vec<Item> {
        match self.decode() {
            Recovery::Sparse(m) => {
                let mut items: Vec<Item> = m.into_keys().collect();
                items.sort_unstable();
                items
            }
            Recovery::Dense => Vec::new(),
        }
    }
}

impl_dyn_sketch!(CountSketch<i64>, point, point_batch, merge, persist);
impl_dyn_sketch!(CountMin, point, point_batch, merge, persist);
impl_dyn_sketch!(AmsSketch, norm, merge, persist);
impl_dyn_sketch!(IpCountSketch, norm, merge, persist);
impl_dyn_sketch!(LogCosL1, norm, merge, persist);
impl_dyn_sketch!(MedianL1, norm, merge, persist);
impl_dyn_sketch!(L0Estimator, norm);
impl_dyn_sketch!(RoughL0, norm);
impl_dyn_sketch!(RoughF0, norm, merge, persist);
impl_dyn_sketch!(SmallL0, norm, merge, persist);
impl_dyn_sketch!(SmallF0, norm, merge, persist);
impl_dyn_sketch!(SparseRecovery, support, merge, persist);
impl_dyn_sketch!(L1SamplerTurnstile, sample);
impl_dyn_sketch!(PrecisionSamplerInstance, sample);
impl_dyn_sketch!(SupportSamplerTurnstile, support);
impl_dyn_sketch!(MorrisCounter, norm);

// ---------------------------------------------------------------------------
// Shape formulas shared by the builders.
// ---------------------------------------------------------------------------

/// Median-amplification depth: 9 practical rows, `log n` theory rows
/// (mirrors `Params::{practical, theory}` without depending on `bd-core`).
pub(crate) fn default_depth(spec: &SketchSpec) -> usize {
    spec.depth.unwrap_or(match spec.regime {
        Regime::Practical => 9,
        Regime::Theory => (bd_hash::log2_ceil(spec.n.max(4)) as usize).max(9) | 1,
    })
}

/// The Countsketch baseline width the experiments sweep against:
/// `48/ε` buckets.
fn countsketch_width(spec: &SketchSpec) -> usize {
    spec.width.unwrap_or((6.0 * (8.0 / spec.epsilon)) as usize)
}

/// Support/recovery request size: `k`, default `max(4, ⌈1/ε⌉)`.
fn request_k(spec: &SketchSpec) -> usize {
    spec.k
        .unwrap_or(((1.0 / spec.epsilon).ceil() as usize).max(4))
}

/// Small-L0/F0 promise capacity: `k`, default `max(16, ⌈1/ε⌉)`.
fn promise_cap(spec: &SketchSpec) -> usize {
    spec.k
        .unwrap_or(((1.0 / spec.epsilon).ceil() as usize).max(16))
}

/// Register every turnstile baseline family of this crate.
pub fn register(reg: &mut Registry) {
    reg.register(
        FamilyInfo {
            family: SketchFamily::CountSketch,
            summary: "Countsketch point-query table (§2.1)",
            caps: Capabilities {
                point: true,
                point_batch: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                delta: true,
                ..Default::default()
            },
            space: "depth × 48/ε cells of log(m) bits",
            type_name: std::any::type_name::<CountSketch<i64>>(),
        },
        |spec| {
            Box::new(CountSketch::<i64>::new(
                spec.seed,
                default_depth(spec),
                countsketch_width(spec),
            ))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::CountMin,
            summary: "Count-Min point-query table (§2.2)",
            caps: Capabilities {
                point: true,
                point_batch: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                delta: true,
                ..Default::default()
            },
            space: "ln(1/δ) × e/ε cells of log(m) bits",
            type_name: std::any::type_name::<CountMin>(),
        },
        |spec| {
            // Each override is honoured independently; the missing
            // dimension keeps its `with_error` formula.
            let depth = spec
                .depth
                .unwrap_or_else(|| (1.0 / spec.delta).ln().ceil().max(1.0) as usize);
            let width = spec
                .width
                .unwrap_or_else(|| (std::f64::consts::E / spec.epsilon).ceil() as usize);
            Box::new(CountMin::new(spec.seed, depth, width))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::Ams,
            summary: "AMS tug-of-war F2 rows (§2.2)",
            caps: Capabilities {
                norm: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                ..Default::default()
            },
            space: "O(1/ε²) signed-sum rows of log(mM) bits",
            type_name: std::any::type_name::<AmsSketch>(),
        },
        |spec| Box::new(AmsFamily::from_spec(spec).sketch()),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::IpCountSketch,
            summary: "Countsketch inner-product table (Lemma 8)",
            caps: Capabilities {
                norm: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                ..Default::default()
            },
            space: "depth × 2/ε buckets of log(m) bits",
            type_name: std::any::type_name::<IpCountSketch>(),
        },
        |spec| Box::new(IpFamily::from_spec(spec).sketch()),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::LogCosL1,
            summary: "log-cosine Cauchy L1 estimator (Figure 5)",
            caps: Capabilities {
                norm: true,
                // Rows add like MedianL1: deterministic but estimate-equal
                // (float re-association across the shard boundary).
                mergeable: true,
                batch_bitwise: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                ..Default::default()
            },
            space: "6/ε² Cauchy rows of fixed-point log(m/ε) bits",
            type_name: std::any::type_name::<LogCosL1>(),
        },
        |spec| match spec.depth {
            Some(main) => Box::new(LogCosL1::with_rows(spec.seed, main, 15, 4)),
            None => Box::new(LogCosL1::new(spec.seed, spec.epsilon)),
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::MedianL1,
            summary: "Indyk median-of-Cauchy L1 estimator (Fact 1)",
            caps: Capabilities {
                norm: true,
                // Rows add, but float addition re-associates across the
                // shard boundary — merges are estimate-equal, not bitwise.
                mergeable: true,
                batch_bitwise: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                delta: true,
                ..Default::default()
            },
            space: "8/ε²·ln(1/δ) Cauchy rows",
            type_name: std::any::type_name::<MedianL1>(),
        },
        |spec| match spec.depth {
            Some(rows) => Box::new(MedianL1::with_rows(spec.seed, rows)),
            None => Box::new(MedianL1::new(spec.seed, spec.epsilon, spec.delta)),
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::L0Turnstile,
            summary: "turnstile L0 estimator (Figure 6, Theorem 9)",
            caps: Capabilities {
                norm: true,
                batch_bitwise: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                epsilon: true,
                ..Default::default()
            },
            space: "log n levels × O(1/ε²) counters — the log n the α-variant windows away",
            type_name: std::any::type_name::<L0Estimator>(),
        },
        |spec| Box::new(L0Estimator::new(spec.seed, spec.n, spec.epsilon)),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::RoughL0,
            summary: "constant-factor rough L0 (Lemma 14)",
            caps: Capabilities {
                norm: true,
                batch_bitwise: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                ..Default::default()
            },
            space: "O(log n · log log n) bits",
            type_name: std::any::type_name::<RoughL0>(),
        },
        |spec| Box::new(RoughL0::for_universe(spec.seed, spec.n)),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::RoughF0,
            summary: "monotone rough F0 tracker (Lemma 18)",
            caps: Capabilities {
                norm: true,
                // Final state is a pure function of the observed item set,
                // so set-union merging replays a single pass exactly.
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs::default(),
            space: "O(log log n) bits of tracker state",
            type_name: std::any::type_name::<RoughF0>(),
        },
        |spec| Box::new(RoughF0::new(spec.seed)),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::SmallL0,
            summary: "exact L0 under an L0 ≤ k promise (Lemma 21)",
            caps: Capabilities {
                norm: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                delta: true,
                ..Default::default()
            },
            space: "reps × O(k²) occupancy bits",
            type_name: std::any::type_name::<SmallL0>(),
        },
        |spec| {
            Box::new(SmallL0::new(
                spec.seed,
                promise_cap(spec),
                spec.depth.unwrap_or(3),
            ))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::SmallF0,
            summary: "exact F0 when F0 ≤ k (Lemma 19)",
            caps: Capabilities {
                norm: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                epsilon: true,
                ..Default::default()
            },
            space: "O(k²) hashed counters of log P bits",
            type_name: std::any::type_name::<SmallF0>(),
        },
        |spec| Box::new(SmallF0::new(spec.seed, promise_cap(spec))),
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::SparseRecovery,
            summary: "exact s-sparse recovery (Lemma 22)",
            caps: Capabilities {
                support: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                epsilon: true,
                ..Default::default()
            },
            space: "O(k) buckets × (count, id-check) counters",
            type_name: std::any::type_name::<SparseRecovery>(),
        },
        |spec| {
            let s = spec
                .k
                .unwrap_or(((2.0 / spec.epsilon).ceil() as usize).max(8));
            Box::new(SparseRecovery::new(spec.seed, spec.n, s))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::L1SamplerTurnstile,
            summary: "precision-sampling L1 sampler (§4)",
            caps: Capabilities {
                sample: true,
                batch_bitwise: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                epsilon: true,
                delta: true,
                ..Default::default()
            },
            space: "1/ε·ln(1/δ) instances × log n-row Countsketches",
            type_name: std::any::type_name::<L1SamplerTurnstile>(),
        },
        |spec| {
            Box::new(L1SamplerTurnstile::new(
                spec.seed,
                spec.n,
                spec.epsilon,
                spec.delta,
            ))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::PrecisionSampler,
            summary: "one precision-sampling instance (§4 component)",
            caps: Capabilities {
                sample: true,
                batch_bitwise: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                epsilon: true,
                ..Default::default()
            },
            space: "depth × 6·log(1/ε) Countsketch cells",
            type_name: std::any::type_name::<PrecisionSamplerInstance>(),
        },
        |spec| {
            let depth = spec
                .depth
                .unwrap_or(bd_hash::log2_ceil(spec.n.max(4)) as usize / 2 + 3);
            Box::new(PrecisionSamplerInstance::new(
                spec.seed,
                spec.n,
                spec.epsilon,
                depth,
            ))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::SupportTurnstile,
            summary: "log n-level support sampler (§7 baseline)",
            caps: Capabilities {
                support: true,
                batch_bitwise: true,
                linear: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                epsilon: true,
                ..Default::default()
            },
            space: "log n levels × Θ(k)-sparse recovery — all levels always live",
            type_name: std::any::type_name::<SupportSamplerTurnstile>(),
        },
        |spec| {
            Box::new(SupportSamplerTurnstile::new(
                spec.seed,
                spec.n,
                request_k(spec),
            ))
        },
    );
    reg.register(
        FamilyInfo {
            family: SketchFamily::Morris,
            summary: "Morris approximate counter (Lemma 11)",
            caps: Capabilities {
                norm: true,
                batch_bitwise: true,
                ..Default::default()
            },
            inputs: SpaceInputs::default(),
            space: "one log log m-bit register",
            type_name: std::any::type_name::<MorrisCounter>(),
        },
        |spec| Box::new(MorrisCounter::new(spec.seed)),
    );
}

impl AmsFamily {
    /// Shape an AMS family from a spec: `depth` rows, default `8/ε²`
    /// (clamped to `[16, 4096]`).
    pub fn from_spec(spec: &SketchSpec) -> Self {
        let rows = spec.depth.unwrap_or_else(|| {
            ((8.0 / (spec.epsilon * spec.epsilon)).ceil() as usize).clamp(16, 4096)
        });
        AmsFamily::new(spec.seed, rows)
    }
}

impl IpFamily {
    /// Shape an inner-product family from a spec: `depth` rows (default 5)
    /// of `width` buckets (default `⌈2/ε⌉`).
    pub fn from_spec(spec: &SketchSpec) -> Self {
        let depth = spec.depth.unwrap_or(5);
        let width = spec
            .width
            .unwrap_or(((2.0 / spec.epsilon).ceil() as usize).max(4));
        IpFamily::new(spec.seed, depth, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_stream::Update;

    fn reg() -> Registry {
        let mut r = Registry::new();
        register(&mut r);
        r
    }

    #[test]
    fn registers_every_baseline_family() {
        let r = reg();
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn caps_match_dynamic_views() {
        let r = reg();
        let spec = SketchSpec::new(SketchFamily::CountSketch)
            .with_n(1 << 10)
            .with_epsilon(0.25);
        let sk = r.build(&spec).unwrap();
        assert!(sk.as_point().is_some());
        assert!(sk.as_norm().is_none());
    }

    #[test]
    fn dyn_merge_folds_shards() {
        let r = reg();
        let spec = SketchSpec::new(SketchFamily::CountMin)
            .with_n(1 << 10)
            .with_epsilon(0.1)
            .with_seed(5);
        let (mut a, mut b) = r.build_pair(&spec).unwrap();
        let mut whole = r.build(&spec).unwrap();
        let batch: Vec<Update> = (0..200)
            .map(|i| Update::new(i % 17, 1 + (i as i64 % 3)))
            .collect();
        a.update_batch(&batch[..100]);
        b.update_batch(&batch[100..]);
        whole.update_batch(&batch);
        a.merge_dyn(b.as_ref()).unwrap();
        let (pa, pw) = (a.as_point().unwrap(), whole.as_point().unwrap());
        for i in 0..17 {
            assert_eq!(pa.point(i), pw.point(i));
        }
    }

    #[test]
    fn merge_across_families_is_type_checked() {
        let r = reg();
        let cm = SketchSpec::new(SketchFamily::CountMin).with_n(64);
        let cs = SketchSpec::new(SketchFamily::CountSketch).with_n(64);
        let mut a = r.build(&cm).unwrap();
        let b = r.build(&cs).unwrap();
        assert!(a.merge_dyn(b.as_ref()).is_err());
    }

    #[test]
    fn smallf0_norm_is_exact_then_infinite() {
        let r = reg();
        let spec = SketchSpec::new(SketchFamily::SmallF0)
            .with_n(1 << 10)
            .with_k(4);
        let mut sk = r.build(&spec).unwrap();
        for i in 0..3 {
            sk.update(i, 1);
        }
        assert_eq!(sk.as_norm().unwrap().norm_estimate(), 3.0);
        for i in 0..200 {
            sk.update(i, 1);
        }
        assert!(sk.as_norm().unwrap().norm_estimate().is_infinite());
    }
}
