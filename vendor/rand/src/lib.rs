//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) slice of `rand` 0.8's surface the
//! workspace actually uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! [`rngs::StdRng`]/[`rngs::SmallRng`] (both xoshiro256++ behind a SplitMix64
//! seeder), uniform `gen_range` over integer and float ranges, `gen_bool`,
//! and [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: for a fixed seed, every generator here produces an
//! identical stream on every platform and every release of this workspace.
//! All sketch reproducibility tests rest on that.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform in `[0, span)` by Lemire's widening-multiply rejection method;
/// exactly uniform for every span.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = x as u128 * span as u128;
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = x as u128 * span as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from its full range (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range (`0..n`, `lo..=hi`, float ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed. Identical seeds give identical streams.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build by drawing a seed from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, passes BigCrush. Seeded through
    /// SplitMix64 so that every `u64` seed yields a well-mixed state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same algorithm as [`StdRng`]; the alias mirrors the real crate's
    /// `small_rng` feature and marks owned per-sketch generators.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's raw 256-bit state, for persistence: a sketch
        /// that snapshots its owned RNG with [`StdRng::state`] and later
        /// restores it with [`StdRng::from_state`] continues the exact
        /// word stream it would have produced uninterrupted.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        let expect = trials as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt(), "{c}");
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.3).abs() < 0.01, "rate {p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean = 0.0;
        let trials = 100_000;
        for _ in 0..trials {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= trials as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn trait_object_compatible_via_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = draw(&mut rng);
        assert!(v < 10);
    }
}
