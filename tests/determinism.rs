//! Reproducibility tests: every structure in the workspace is a
//! deterministic function of its construction seed. Sketches own their RNGs,
//! so a `(seed, stream)` pair fully determines the final state — this is
//! what makes the experiment suite re-runnable bit-for-bit, and it is
//! enforced here structure by structure through the shared `StreamRunner`.

use bounded_deletions::prelude::*;

fn stream() -> StreamBatch {
    BoundedDeletionGen::new(1 << 12, 20_000, 4.0).generate_seeded(1234)
}

#[test]
fn generators_are_seed_deterministic() {
    let a = stream();
    let b = stream();
    assert_eq!(a.updates, b.updates);
    assert_eq!(
        NetworkDiffGen::new(1 << 16, 5_000, 0.2)
            .generate_seeded(9)
            .updates,
        NetworkDiffGen::new(1 << 16, 5_000, 0.2)
            .generate_seeded(9)
            .updates,
    );
    assert_eq!(
        L0AlphaGen::new(1 << 16, 100, 2.0)
            .generate_seeded(10)
            .updates,
        L0AlphaGen::new(1 << 16, 100, 2.0)
            .generate_seeded(10)
            .updates,
    );
}

#[test]
fn csss_is_seed_deterministic() {
    let s = stream();
    let spec = SketchSpec::new(SketchFamily::Csss)
        .with_n(s.n)
        .with_epsilon(0.1)
        .with_alpha(4.0)
        .with_k(8)
        .with_depth(7)
        .with_seed(77);
    let run = || {
        let mut c: Csss = build_sketch(&spec);
        StreamRunner::new().run(&mut c, &s);
        (0..64u64)
            .map(|i| c.estimate(i).to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn heavy_hitters_and_space_reports_are_deterministic() {
    let s = stream();
    let spec = SketchSpec::new(SketchFamily::AlphaHh)
        .with_n(s.n)
        .with_epsilon(0.1)
        .with_alpha(4.0)
        .with_seed(5);
    let run = || {
        let mut hh: AlphaHeavyHitters = build_sketch(&spec);
        let report = StreamRunner::new().run(&mut hh, &s);
        (hh.query(), report.space)
    };
    let (q1, s1) = run();
    let (q2, s2) = run();
    assert_eq!(q1.len(), q2.len());
    for ((i1, e1), (i2, e2)) in q1.iter().zip(&q2) {
        assert_eq!(i1, i2);
        assert_eq!(e1.to_bits(), e2.to_bits());
    }
    assert_eq!(s1, s2);
}

#[test]
fn l0_and_support_structures_are_deterministic() {
    let s = L0AlphaGen::new(1 << 18, 400, 2.0).generate_seeded(2);
    let spec = SketchSpec::new(SketchFamily::AlphaL0)
        .with_n(s.n)
        .with_epsilon(0.2)
        .with_alpha(2.0);
    let run = || {
        let mut l0: AlphaL0Estimator = build_sketch(&spec.with_seed(3));
        let mut sup: AlphaSupportSampler = build_sketch(
            &spec
                .with_family(SketchFamily::AlphaSupport)
                .with_k(8)
                .with_seed(4),
        );
        let runner = StreamRunner::new();
        runner.run(&mut l0, &s);
        runner.run(&mut sup, &s);
        (l0.estimate().to_bits(), sup.query())
    };
    assert_eq!(run(), run());
}

#[test]
fn baselines_are_deterministic() {
    let s = stream();
    let spec = SketchSpec::new(SketchFamily::CountSketch)
        .with_n(s.n)
        .with_epsilon(0.25)
        .with_depth(5)
        .with_width(96);
    let run = || {
        let mut cs: CountSketch<i64> = build_sketch(&spec.with_seed(4));
        let mut cm: CountMin = build_sketch(&spec.with_family(SketchFamily::CountMin).with_seed(5));
        let mut l1: MedianL1 = build_sketch(
            &spec
                .with_family(SketchFamily::MedianL1)
                .with_depth(32)
                .with_seed(6),
        );
        let mut l0: L0Estimator = build_sketch(
            &SketchSpec::new(SketchFamily::L0Turnstile)
                .with_n(s.n)
                .with_epsilon(0.25)
                .with_seed(7),
        );
        let runner = StreamRunner::new();
        let reports = runner.run_each(
            &mut [&mut cs as &mut dyn Sketch, &mut cm, &mut l1, &mut l0],
            &s,
        );
        assert_eq!(reports.len(), 4);
        (
            cs.estimate(7).to_bits(),
            cm.estimate(7),
            l1.estimate().to_bits(),
            l0.estimate().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn sampler_draws_are_deterministic() {
    let s = StrongAlphaGen::new(128, 50, 3.0).generate_seeded(6);
    let spec = SketchSpec::new(SketchFamily::AlphaL1Sampler)
        .with_n(128)
        .with_epsilon(0.25)
        .with_alpha(3.0)
        .with_delta(0.5)
        .with_seed(8);
    let run = || {
        let mut smp: AlphaL1Sampler = build_sketch(&spec);
        StreamRunner::new().run(&mut smp, &s);
        match smp.sample() {
            SampleOutcome::Sample { item, estimate } => (Some(item), estimate.to_bits()),
            SampleOutcome::Fail => (None, 0),
        }
    };
    assert_eq!(run(), run());
}

#[test]
fn batched_and_unbatched_runners_agree_for_default_impls() {
    // Sketches that keep the default update_batch loop must be bit-identical
    // whichever way the runner drives them. (AlphaL1General used to sit
    // here; it now has a pre-aggregating — statistical — batch override and
    // is covered by the conformance quality checks instead.)
    let s = stream();
    let spec = SketchSpec::new(SketchFamily::AlphaL1)
        .with_n(s.n)
        .with_epsilon(0.2)
        .with_alpha(4.0);
    let run = |runner: StreamRunner| {
        let mut l1: AlphaL1Estimator = build_sketch(&spec.with_seed(9));
        let mut l0: AlphaL0Estimator =
            build_sketch(&spec.with_family(SketchFamily::AlphaL0).with_seed(10));
        runner.run(&mut l1, &s);
        runner.run(&mut l0, &s);
        (l1.estimate().to_bits(), l0.estimate().to_bits())
    };
    assert_eq!(run(StreamRunner::unbatched()), run(StreamRunner::new()));
}
