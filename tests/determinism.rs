//! Reproducibility tests: every structure in the workspace is a
//! deterministic function of its RNG seeds. This is what makes the
//! experiment suite (EXPERIMENTS.md) re-runnable bit-for-bit, so it is
//! enforced here structure by structure.

use bounded_deletions::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream() -> StreamBatch {
    let mut rng = StdRng::seed_from_u64(1234);
    BoundedDeletionGen::new(1 << 12, 20_000, 4.0).generate(&mut rng)
}

#[test]
fn generators_are_seed_deterministic() {
    let a = stream();
    let b = stream();
    assert_eq!(a.updates, b.updates);
    let mut r1 = StdRng::seed_from_u64(9);
    let mut r2 = StdRng::seed_from_u64(9);
    assert_eq!(
        NetworkDiffGen::new(1 << 16, 5_000, 0.2).generate(&mut r1).updates,
        NetworkDiffGen::new(1 << 16, 5_000, 0.2).generate(&mut r2).updates,
    );
    let mut r1 = StdRng::seed_from_u64(10);
    let mut r2 = StdRng::seed_from_u64(10);
    assert_eq!(
        L0AlphaGen::new(1 << 16, 100, 2.0).generate(&mut r1).updates,
        L0AlphaGen::new(1 << 16, 100, 2.0).generate(&mut r2).updates,
    );
}

#[test]
fn csss_is_seed_deterministic() {
    let s = stream();
    let params = Params::practical(s.n, 0.1, 4.0);
    let run = || {
        let mut rng = StdRng::seed_from_u64(77);
        let mut c = bd_core::Csss::new(&mut rng, 8, 7, params.csss_sample_budget());
        for u in &s {
            c.update(&mut rng, u.item, u.delta);
        }
        (0..64u64).map(|i| c.estimate(i).to_bits()).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn heavy_hitters_and_space_reports_are_deterministic() {
    let s = stream();
    let params = Params::practical(s.n, 0.1, 4.0);
    let run = || {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hh = AlphaHeavyHitters::new_strict(&mut rng, &params);
        for u in &s {
            hh.update(&mut rng, u.item, u.delta);
        }
        (hh.query(), hh.space())
    };
    let (q1, s1) = run();
    let (q2, s2) = run();
    assert_eq!(q1.len(), q2.len());
    for ((i1, e1), (i2, e2)) in q1.iter().zip(&q2) {
        assert_eq!(i1, i2);
        assert_eq!(e1.to_bits(), e2.to_bits());
    }
    assert_eq!(s1, s2);
}

#[test]
fn l0_and_support_structures_are_deterministic() {
    let mut gen_rng = StdRng::seed_from_u64(2);
    let s = L0AlphaGen::new(1 << 18, 400, 2.0).generate(&mut gen_rng);
    let params = Params::practical(s.n, 0.2, 2.0);
    let run = || {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l0 = AlphaL0Estimator::new(&mut rng, &params);
        let mut sup = AlphaSupportSampler::new(&mut rng, &params, 8);
        for u in &s {
            l0.update(&mut rng, u.item, u.delta);
            sup.update(&mut rng, u.item, u.delta);
        }
        (l0.estimate().to_bits(), sup.query())
    };
    assert_eq!(run(), run());
}

#[test]
fn baselines_are_deterministic() {
    let s = stream();
    let run = || {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cs = CountSketch::<i64>::new(&mut rng, 5, 96);
        let mut cm = CountMin::new(&mut rng, 5, 96);
        let mut l1 = MedianL1::with_rows(&mut rng, 32);
        let mut l0 = L0Estimator::new(&mut rng, s.n, 0.25);
        for u in &s {
            cs.update(u.item, u.delta);
            cm.update(u.item, u.delta);
            l1.update(u.item, u.delta);
            l0.update(u.item, u.delta);
        }
        (
            cs.estimate(7).to_bits(),
            cm.estimate(7),
            l1.estimate().to_bits(),
            l0.estimate().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn sampler_draws_are_deterministic() {
    let mut gen_rng = StdRng::seed_from_u64(6);
    let s = StrongAlphaGen::new(128, 50, 3.0).generate(&mut gen_rng);
    let params = Params::practical(128, 0.25, 3.0).with_delta(0.5);
    let run = || {
        let mut rng = StdRng::seed_from_u64(8);
        let mut smp = AlphaL1Sampler::new(&mut rng, &params);
        for u in &s {
            smp.update(&mut rng, u.item, u.delta);
        }
        match smp.query() {
            SampleOutcome::Sample { item, estimate } => (Some(item), estimate.to_bits()),
            SampleOutcome::Fail => (None, 0),
        }
    };
    assert_eq!(run(), run());
}
