//! Helpers shared by the registry-driven integration suites (`conformance`,
//! `sharded`, `spec`): the per-family conformance spec, the workload stream,
//! and the capability-probe machinery every equality check compares.
//!
//! Probes carry their value kind so comparisons can be *bitwise* (families
//! whose merges/batches replay exactly) or *estimate-equal* (deterministic
//! float merges that re-associate addition, like the Cauchy L1 rows) — the
//! distinction `Capabilities::merge_bitwise` encodes and `DESIGN.md §7`
//! documents.

#![allow(dead_code)]

use bounded_deletions::prelude::*;

/// The shared conformance workload: a mixed insert/delete bounded-deletion
/// stream over a small universe (12 000 unit updates, α = 3).
pub fn stream(seed: u64) -> StreamBatch {
    BoundedDeletionGen::new(1 << 10, 8_000, 3.0).generate_seeded(seed)
}

/// Deterministic per-family seed (stable across registry reordering).
pub fn family_seed(family: SketchFamily) -> u64 {
    family
        .name()
        .bytes()
        .fold(11u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
}

/// The spec each family is checked under: small universe, fast shapes, and
/// — for the sampling structures — regimes where the exact contracts hold.
/// The `2^10` universe also keeps the windowed L0 family's level windows
/// covering every level, so their level-wise merges are exact here.
pub fn conformance_spec(family: SketchFamily) -> SketchSpec {
    let spec = SketchSpec::new(family)
        .with_n(1 << 10)
        .with_epsilon(0.2)
        .with_alpha(3.0)
        .with_seed(family_seed(family));
    match family {
        // Budget larger than the stream mass ⇒ no thinning ⇒ sampling is
        // degenerate and the bitwise/linearity contracts are exact.
        SketchFamily::Csss | SketchFamily::SampledVector => spec.with_budget(1 << 22),
        // α L1 samplers: fewer amplification copies for test speed, and a
        // `c` large enough that the inner CSSS budget `c·α²/ε³` towers over
        // the scaled mass `‖z‖₁` (`1/t_i` is heavy-tailed) — no thinning, so
        // the merge/batch contracts are exact (DESIGN.md §7, cause 1).
        SketchFamily::AlphaL1Sampler => spec.with_epsilon(0.25).with_delta(0.5).with_c(1e8),
        SketchFamily::AlphaL1SamplerInstance => spec.with_epsilon(0.25).with_c(1e8),
        SketchFamily::L1SamplerTurnstile => spec.with_epsilon(0.25).with_delta(0.5),
        // α inner product: an interval budget `c·α²/ε²` above the stream
        // mass keeps window 0 the only live window (no interval sampling),
        // so level-wise merges are exact adds (DESIGN.md §7, cause 3).
        SketchFamily::AlphaIp => spec.with_c(256.0),
        SketchFamily::AlphaSupportSet => spec.with_delta(0.5).with_k(8),
        SketchFamily::AlphaSupport | SketchFamily::SupportTurnstile => spec.with_k(8),
        _ => spec,
    }
}

/// One probed value: item identities compare exactly, scalar estimates
/// compare bitwise or within a float-association tolerance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeVal {
    /// An item identity or section marker — always compared exactly.
    Item(u64),
    /// A float estimate — comparison mode depends on the family's
    /// `merge_bitwise` capability.
    Scalar(f64),
}

/// Query probe over every capability the sketch exposes: the fingerprint
/// the conformance and sharding checks compare. (Space is deliberately not
/// probed: pre-aggregating batch paths may observe different counter peaks
/// than the sequential replay while answering identically.)
pub fn probe(sk: &dyn DynSketch) -> Vec<ProbeVal> {
    let mut out = Vec::new();
    if let Some(p) = sk.as_point() {
        out.extend((0..1024u64).map(|i| ProbeVal::Scalar(p.point(i))));
    }
    if let Some(nm) = sk.as_norm() {
        out.push(ProbeVal::Scalar(nm.norm_estimate()));
    }
    if let Some(s) = sk.as_sample() {
        match s.sample() {
            SampleOutcome::Sample { item, estimate } => {
                out.push(ProbeVal::Item(item));
                out.push(ProbeVal::Scalar(estimate));
            }
            SampleOutcome::Fail => out.push(ProbeVal::Item(u64::MAX)),
        }
    }
    if let Some(sp) = sk.as_support() {
        out.push(ProbeVal::Item(u64::MAX - 1)); // section marker
        out.extend(sp.support_query().into_iter().map(ProbeVal::Item));
    }
    out
}

/// Relative tolerance for estimate-equal comparisons: generous against
/// float re-association noise (≈ last-ulp per summand), far below any
/// statistical difference a wrong merge would produce.
pub const ESTIMATE_TOLERANCE: f64 = 1e-6;

/// Assert two probes agree: bit-for-bit when `bitwise`, item-exact plus
/// `ESTIMATE_TOLERANCE`-relative on scalars otherwise.
pub fn assert_probes_match(name: &str, want: &[ProbeVal], got: &[ProbeVal], bitwise: bool) {
    assert_eq!(
        want.len(),
        got.len(),
        "{name}: probe shapes differ ({} vs {} values)",
        want.len(),
        got.len()
    );
    for (idx, (w, g)) in want.iter().zip(got).enumerate() {
        match (w, g) {
            (ProbeVal::Item(a), ProbeVal::Item(b)) => {
                assert_eq!(a, b, "{name}: probe[{idx}] item mismatch");
            }
            (ProbeVal::Scalar(a), ProbeVal::Scalar(b)) if bitwise => {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: probe[{idx}] scalar not bit-identical ({a} vs {b})"
                );
            }
            (ProbeVal::Scalar(a), ProbeVal::Scalar(b)) => {
                let tol = ESTIMATE_TOLERANCE * a.abs().max(b.abs()).max(1.0);
                assert!(
                    (a - b).abs() <= tol,
                    "{name}: probe[{idx}] estimates differ beyond tolerance ({a} vs {b})"
                );
            }
            (w, g) => panic!("{name}: probe[{idx}] kind mismatch ({w:?} vs {g:?})"),
        }
    }
}
