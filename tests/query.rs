//! The concurrent query front-end's acceptance suite.
//!
//! Three layers, each pinned against the one below it:
//!
//! 1. **Publication** — for *every* mergeable family (the suite iterates
//!    `registry().families()`, no hand list), reader threads polling
//!    `SnapshotHandle::latest` while the service ingests must only ever
//!    observe the *same immutable snapshot objects* the service returned
//!    from `ingest`/`finish` — pointer identity, the strongest possible
//!    "bit-identical to the same epoch's snapshot" statement — with stamps
//!    that move monotonically and end at the final cut.
//! 2. **Engine** — answers through `QueryEngine` (batched point path
//!    included) match the scalar capability views bit for bit.
//! 3. **Wire** — answers served over a real TCP socket while ingestion
//!    runs are bit-identical to direct `QueryEngine` answers on the
//!    snapshot with the same stamp, and malformed/truncated/oversized
//!    frames close only their own connection.

mod common;

use bounded_deletions::prelude::*;
use common::{conformance_spec, stream};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

/// Service shape shared by the suite: ≥ 3 scheduled epochs per run, fine
/// dispatch chunks, 3 workers.
fn service_config(stream_len: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_epoch((stream_len as u64) / 3)
        .with_threads(3)
        .with_chunk(512)
}

/// Layer 1: concurrent readers only ever see complete published epochs,
/// and each observed view IS the snapshot the service returned for that
/// stamp (pointer identity), for every mergeable family.
#[test]
fn concurrent_views_are_the_published_snapshots_for_every_mergeable_family() {
    let s = stream(0x7E);
    let mut covered = 0;
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered += 1;
        let spec = conformance_spec(info.family);
        let mut svc = StreamService::start(registry(), &spec, service_config(s.len())).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let handle = svc.handle();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen: Vec<QueryView> = Vec::new();
                    let mut done = false;
                    while !done {
                        // Read the flag *before* the load: once `stop` is
                        // observed, one more load still runs, so the final
                        // published epoch is always captured.
                        done = stop.load(SeqCst);
                        if let Some(view) = handle.latest() {
                            match seen.last() {
                                Some(prev) => {
                                    assert!(
                                        prev.stamp() <= view.stamp(),
                                        "stamps went backwards: {} → {}",
                                        prev.stamp(),
                                        view.stamp()
                                    );
                                    if prev.stamp() != view.stamp() {
                                        seen.push(view);
                                    }
                                }
                                None => seen.push(view),
                            }
                        }
                        std::thread::yield_now();
                    }
                    seen
                })
            })
            .collect();
        let mut snaps = Vec::new();
        for piece in s.updates.chunks(313) {
            snaps.extend(svc.ingest(piece).unwrap());
        }
        snaps.extend(svc.finish().unwrap());
        stop.store(true, SeqCst);
        assert!(snaps.len() >= 3, "{}: too few epochs", info.family);
        for r in readers {
            let seen = r.join().unwrap();
            assert!(!seen.is_empty(), "{}: reader saw nothing", info.family);
            for view in &seen {
                let snap = snaps
                    .iter()
                    .find(|sn| sn.report.total_updates as u64 == view.stamp())
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: observed stamp {} is not a scheduled epoch",
                            info.family,
                            view.stamp()
                        )
                    });
                // The published object and the returned object are one.
                assert!(
                    std::ptr::eq(view.snapshot(), snap.as_ref()),
                    "{}: view at stamp {} is a different object than the returned snapshot",
                    info.family,
                    view.stamp()
                );
            }
            assert_eq!(
                seen.last().unwrap().stamp() as usize,
                s.len(),
                "{}: reader missed the final epoch",
                info.family
            );
        }
    }
    assert!(covered >= 20, "mergeable catalog shrank: {covered}");
}

/// Layer 2: the engine's batched point path answers exactly like the
/// scalar capability view on the same published snapshot, for every
/// point-capable mergeable family (batch-capable or fallback alike).
#[test]
fn engine_batched_points_match_scalar_on_published_snapshots() {
    let s = stream(0x9E);
    for info in registry().families() {
        if !info.caps.mergeable || !info.caps.point {
            continue;
        }
        let spec = conformance_spec(info.family);
        let mut svc = StreamService::start(registry(), &spec, service_config(s.len())).unwrap();
        let mut snaps = svc.ingest(&s.updates).unwrap();
        snaps.extend(svc.finish().unwrap());
        let snap = snaps.last().expect("at least one epoch");
        let view = svc_view(snap);
        let engine = view.engine();
        let items: Vec<u64> = (0..128u64).chain([7, 7, 1023]).collect();
        let mut batched = Vec::new();
        engine.point_many(&items, &mut batched).unwrap();
        for (&i, &est) in items.iter().zip(&batched) {
            assert_eq!(
                est.to_bits(),
                engine.point(i).unwrap().to_bits(),
                "{}: batched point of {i} diverged on a published snapshot",
                info.family
            );
        }
    }
}

/// A view pinned directly on a returned snapshot (what `QueryView` calls
/// the loopback-comparison path).
fn svc_view(snap: &Arc<Snapshot>) -> QueryView {
    QueryView::from_snapshot(Arc::clone(snap))
}

/// Layer 3: answers served over TCP while ingestion runs are bit-identical
/// to direct `QueryEngine` answers on the same-stamp snapshot.
#[test]
fn serve_over_tcp_matches_direct_engine_bit_for_bit() {
    let s = stream(0x4E);
    for family in [
        SketchFamily::Exact,
        SketchFamily::Csss,
        SketchFamily::AlphaHh,
    ] {
        let caps = registry().info(family).unwrap().caps;
        let spec = conformance_spec(family);
        let mut svc = StreamService::start(registry(), &spec, service_config(s.len())).unwrap();
        let server = QueryServer::bind("127.0.0.1:0", svc.handle()).unwrap();
        let addr = server.local_addr();
        let updates = s.updates.clone();
        let ingest = std::thread::spawn(move || {
            let mut snaps = Vec::new();
            for piece in updates.chunks(97) {
                snaps.extend(svc.ingest(piece).unwrap());
            }
            snaps.extend(svc.finish().unwrap());
            snaps
        });

        // Query concurrently with ingestion; verify after, against the
        // same-stamp snapshots the ingest thread returns.
        let mut client = QueryClient::connect(addr).unwrap();
        // Wait for the first epoch cut to land so the query rounds exercise
        // real answers even for slow-ingesting families.
        while let Response::Error {
            code: ErrorCode::NoSnapshot,
            ..
        } = client.request(&Request::Report).unwrap()
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let items: Vec<u64> = (0..64).collect();
        let mut observed: Vec<(Request, Response)> = Vec::new();
        for round in 0..40u64 {
            for req in [
                Request::Point { item: round % 64 },
                Request::PointBatch {
                    items: items.clone(),
                },
                Request::Norm,
                Request::HeavyHitters { threshold: 4.0 },
                Request::Report,
            ] {
                let resp = client.request(&req).unwrap();
                observed.push((req, resp));
            }
        }
        let snaps = ingest.join().unwrap();
        let by_stamp: HashMap<u64, &Arc<Snapshot>> = snaps
            .iter()
            .map(|sn| (sn.report.total_updates as u64, sn))
            .collect();
        let mut verified = 0usize;
        for (req, resp) in &observed {
            match resp {
                Response::Error { code, .. } => match code {
                    // Queries raced ahead of the first cut: legitimate.
                    ErrorCode::NoSnapshot => {}
                    // Only allowed where the family truly lacks the view.
                    ErrorCode::Unsupported => {
                        assert!(
                            matches!(req, Request::Norm) && !caps.norm,
                            "{family}: spurious Unsupported for {req:?}"
                        );
                    }
                    other => panic!("{family}: unexpected error {other:?} for {req:?}"),
                },
                Response::Point { stamp, estimate } => {
                    let engine = svc_view(by_stamp[stamp]).engine();
                    let Request::Point { item } = req else {
                        panic!("{family}: kind mismatch")
                    };
                    assert_eq!(estimate.to_bits(), engine.point(*item).unwrap().to_bits());
                    verified += 1;
                }
                Response::Points { stamp, estimates } => {
                    let engine = svc_view(by_stamp[stamp]).engine();
                    let mut direct = Vec::new();
                    engine.point_many(&items, &mut direct).unwrap();
                    assert_eq!(
                        estimates.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                        direct.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                        "{family}: served batch diverged at stamp {stamp}"
                    );
                    verified += 1;
                }
                Response::Norm { stamp, estimate } => {
                    let engine = svc_view(by_stamp[stamp]).engine();
                    assert_eq!(estimate.to_bits(), engine.norm().unwrap().to_bits());
                    verified += 1;
                }
                Response::HeavyHitters { stamp, hitters } => {
                    let engine = svc_view(by_stamp[stamp]).engine();
                    let direct = engine.heavy_hitters(4.0).unwrap();
                    assert_eq!(hitters.len(), direct.len());
                    for ((gi, ge), (di, de)) in hitters.iter().zip(&direct) {
                        assert_eq!((gi, ge.to_bits()), (di, de.to_bits()));
                    }
                    verified += 1;
                }
                Response::Report(rep) => {
                    let snap = by_stamp[&rep.total_updates];
                    assert_eq!(rep.epoch, snap.report.epoch as u64);
                    assert_eq!(
                        rep.alpha_observed.to_bits(),
                        snap.report.alpha_observed().to_bits()
                    );
                    assert_eq!(rep.space_bits, snap.report.space_bits());
                    assert_eq!(rep.threads, snap.report.threads as u32);
                    verified += 1;
                }
                other => panic!("{family}: unexpected response {other:?}"),
            }
        }
        assert!(
            verified >= 40,
            "{family}: too few verified answers ({verified})"
        );

        // Graceful shutdown through the protocol.
        assert_eq!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShutdownAck
        );
        server.join();
    }
}

/// Malformed, truncated, and oversized frames close their own connection —
/// no panic, no effect on a well-behaved client of the same live server.
#[test]
fn broken_frames_close_cleanly_without_disturbing_the_server() {
    let s = stream(0x88);
    let spec = conformance_spec(SketchFamily::Exact);
    let mut svc = StreamService::start(registry(), &spec, service_config(s.len())).unwrap();
    let server = QueryServer::bind("127.0.0.1:0", svc.handle()).unwrap();
    svc.ingest(&s.updates).unwrap();
    let addr = server.local_addr();

    let expect_close = |mut sock: TcpStream| {
        let mut sink = Vec::new();
        match sock.read_to_end(&mut sink) {
            Ok(n) => assert_eq!(n, 0, "expected close, got {n} bytes"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ),
                "expected close, got {e}"
            ),
        }
    };

    // Oversized length prefix.
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&u32::MAX.to_le_bytes()).unwrap();
    expect_close(sock);
    // Truncated frame: the prefix promises more than ever arrives.
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&64u32.to_le_bytes()).unwrap();
    sock.write_all(&[0x01, 0x02]).unwrap();
    sock.shutdown(std::net::Shutdown::Write).unwrap();
    expect_close(sock);
    // Well-formed frame, garbage kind.
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&4u32.to_le_bytes()).unwrap();
    sock.write_all(&[0x42, 0, 0, 0]).unwrap();
    expect_close(sock);

    // The server is unharmed: a real client still gets stamped answers.
    let mut client = QueryClient::connect(addr).unwrap();
    match client.request(&Request::Point { item: 5 }).unwrap() {
        Response::Point { stamp, .. } => assert!(stamp > 0),
        other => panic!("unexpected response {other:?}"),
    }
    server.join();
}
