//! Write-ahead-log conformance: the tentpole law **crash anywhere →
//! recover ≡ uninterrupted**, now at *dispatch* granularity instead of
//! epoch granularity.
//!
//! With `wal=batch` every dispatched cell is durable before ingestion
//! proceeds, so a service fed from a non-replayable source (a live
//! channel with no `ingest(&slice)` to re-offer) loses at most the one
//! cell in flight. These suites crash a persisted service at every
//! injectable fault point (`bd_stream::fault`: die before an append, die
//! mid-append, die after the append but before the covering snapshot,
//! and the adversarial torn-final-record), cold-start a second service
//! (`StreamService::recover` = newest snapshot + WAL tail replay), feed
//! the remaining source from [`StreamService::replay_from`], and pin the
//! continuation against an uninterrupted run: bit-identical where the
//! family claims `merge_bitwise`, estimate-equal otherwise — the same
//! per-family contract as `tests/recovery.rs`, tightened from epoch cuts
//! down to single appends (`DESIGN.md §14`).
//!
//! Torn or bit-flipped WAL tails are always *total*: the damaged frame
//! ends the replayable chain with a physical truncation repair, never a
//! panic. The `BD_FAULT` env knob (`before-append` / `mid-append` /
//! `after-append` / `torn-tail`) restricts the sweep to one crash point;
//! CI re-runs the suite under the `BD_SHARD_THREADS` matrix.

mod common;

use bd_stream::fault::{FaultInjector, FaultPlan, FaultPoint, ALL_POINTS};
use bd_stream::{
    wal_segments, Capabilities, FamilyInfo, PersistError, Registry, ServiceConfig, ServiceError,
    SnapshotStore, SpaceInputs, StreamService,
};
use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream};

/// Worker count under test: the CI matrix knob, defaulting to the
/// contended shape (the fixed [1, 3] sweep is covered by the matrix).
fn threads() -> usize {
    std::env::var("BD_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(3)
}

/// The crash points under sweep: all four, or the one `BD_FAULT` names.
fn fault_points() -> Vec<FaultPoint> {
    match std::env::var("BD_FAULT") {
        Ok(v) => vec![v.parse().expect("BD_FAULT must name a fault point")],
        Err(_) => ALL_POINTS.to_vec(),
    }
}

/// Service shape shared with `tests/recovery.rs`, plus the per-batch
/// fsync policy the durability laws are stated under.
fn wal_config(stream_len: usize, threads: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_epoch((stream_len as u64) / 3)
        .with_threads(threads)
        .with_chunk(512)
        .with_wal(WalPolicy::Batch)
}

/// A self-cleaning snapshot+WAL directory under the OS temp dir.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn store(&self) -> SnapshotStore {
        SnapshotStore::open(&self.0).unwrap()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The acceptance law: for every persistable mergeable family and every
/// injectable crash point, a service persisted under `wal=batch` that
/// dies mid-epoch — after a clean first epoch, so the crash exercises
/// the snapshot + WAL-tail interplay — recovers and, fed the remaining
/// source from `replay_from()`, ends in the state the uninterrupted run
/// reached.
#[test]
fn crash_at_every_fault_point_recovers_for_every_mergeable_family() {
    let s = stream(0xA1);
    let threads = threads();
    let points = fault_points();
    let mut covered = Vec::new();
    for info in registry().families() {
        if !(info.caps.mergeable && info.caps.persist) {
            continue;
        }
        covered.push(info.family.name());
        let spec = conformance_spec(info.family);
        let cfg = wal_config(s.len(), threads);

        // The uninterrupted reference run (no store: the WAL only opens
        // when persistence is attached, and `wal=` is not part of the
        // dispatch geometry, so the runs are comparable).
        let mut un = StreamService::start(registry(), &spec, cfg).unwrap();
        let mut want = un.ingest(&s.updates).unwrap();
        want.extend(un.finish().unwrap());
        let want_last = want.last().unwrap();

        for point in &points {
            let name = format!("{} (threads = {threads}, fault = {point})", info.family);
            let dir = TempDir::new(&format!("{}-{threads}-{point}", info.family.name()));

            // A clean first stretch — epoch 1 persisted, its WAL segment
            // truncated — then the armed crash a few appends later.
            let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
            svc.persist_to(dir.store()).unwrap();
            let stop = s.len() * 5 / 9;
            svc.ingest(&s.updates[..stop]).unwrap();
            svc.arm_fault(FaultInjector::arm(FaultPlan {
                point: *point,
                after_appends: 3,
            }));
            let died = svc
                .ingest(&s.updates[stop..])
                .expect_err("the armed fault must surface as an ingest error");
            assert!(
                matches!(died, ServiceError::Persist(PersistError::FaultInjected(_))),
                "{name}: wrong crash error: {died}"
            );
            drop(svc); // the process is gone; only the durable state survives

            // Cold-start: newest snapshot + WAL tail replay. The resume
            // point must lie beyond the snapshot cut — the WAL carried
            // dispatched cells the epoch-granular store never saw.
            let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store())
                .unwrap_or_else(|e| panic!("{name}: recovery failed: {e}"));
            let from = rec.replay_from();
            assert!(
                from > cfg.epoch as usize,
                "{name}: resume point {from} not beyond the snapshot cut {}",
                cfg.epoch
            );
            assert!(
                from <= stop + 4 * cfg.chunk,
                "{name}: resume point {from} claims updates never offered"
            );
            assert!(rec.latest().is_some(), "{name}: nothing served on boot");

            // Feed the rest of the source and pin the final state.
            let mut got = rec.ingest(&s.updates[from..]).unwrap();
            got.extend(rec.finish().unwrap());
            let g = got.last().unwrap();
            assert_eq!(g.report.epoch, want_last.report.epoch, "{name}");
            assert_eq!(g.report.total_updates, s.len(), "{name}: lost updates");
            assert_eq!(
                g.report.total_inserted, want_last.report.total_inserted,
                "{name}"
            );
            assert_eq!(
                g.report.total_deleted, want_last.report.total_deleted,
                "{name}"
            );
            assert_probes_match(
                &name,
                &probe(want_last.sketch.as_ref()),
                &probe(g.sketch.as_ref()),
                info.caps.merge_bitwise,
            );
        }
    }
    assert!(
        covered.len() >= 20,
        "persistable mergeable catalog shrank unexpectedly: {covered:?}"
    );
}

/// A plain crash (drop without `finish`, no fault injection) under
/// `wal=batch` resumes at the *dispatched* cursor — strictly finer than
/// the epoch boundary PR9's snapshot-only recovery could offer — and the
/// epoch reports account for the log traffic.
#[test]
fn wal_tail_resumes_at_the_dispatched_cursor() {
    let s = stream(0x1A);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = wal_config(s.len(), 3);
    // A stop past the first cut, aligned to the dispatch grid, so the
    // dispatched cursor at the crash is exactly `stop`.
    let stop = 11 * cfg.chunk;
    assert!(stop > cfg.epoch as usize && stop < s.len());

    let dir = TempDir::new("cursor");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    let snaps = svc.ingest(&s.updates[..stop]).unwrap();
    assert!(
        snaps
            .iter()
            .all(|sn| sn.report.wal_records > 0 && sn.report.wal_bytes > 0),
        "epoch reports must account for the WAL appends behind them"
    );
    drop(svc);

    let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(
        rec.replay_from(),
        stop,
        "every dispatched (= logged) update must survive the crash"
    );
    assert_eq!(rec.epochs_cut(), 1);
    let mut got = rec.ingest(&s.updates[stop..]).unwrap();
    got.extend(rec.finish().unwrap());

    let mut seq = registry().build(&spec).unwrap();
    seq.update_batch(&s.updates);
    assert_probes_match(
        "dispatched-cursor recovery",
        &probe(seq.as_ref()),
        &probe(got.last().unwrap().sketch.as_ref()),
        true,
    );
}

/// A bit-flipped WAL tail is truncated, not fatal: recovery drops the
/// damaged frame (and everything after it), repairs the file in place,
/// and the replayed-then-refed run still reaches the uninterrupted
/// state.
#[test]
fn corrupt_wal_tail_is_truncated_not_fatal() {
    let s = stream(0x1B);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = wal_config(s.len(), 3);
    let stop = 11 * cfg.chunk;

    let dir = TempDir::new("corrupt");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates[..stop]).unwrap();
    drop(svc);

    // Flip a byte inside the live segment's last record.
    let (_, path) = wal_segments(dir.store().dir())
        .unwrap()
        .pop()
        .expect("a live WAL segment must exist");
    let mut raw = std::fs::read(&path).unwrap();
    let at = raw.len() - 6;
    raw[at] ^= 0x20;
    std::fs::write(&path, &raw).unwrap();

    let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    let from = rec.replay_from();
    assert!(
        from >= cfg.epoch as usize && from < stop,
        "the damaged frame (and only its tail) must be dropped: resumed at {from}"
    );
    // The repair is physical: the segment now rescans clean.
    let scan = bd_stream::read_segment(&path).unwrap();
    assert!(scan.truncation.is_none(), "torn tail not repaired in place");

    let mut got = rec.ingest(&s.updates[from..]).unwrap();
    got.extend(rec.finish().unwrap());
    let mut seq = registry().build(&spec).unwrap();
    seq.update_batch(&s.updates);
    assert_probes_match(
        "post-corruption recovery",
        &probe(seq.as_ref()),
        &probe(got.last().unwrap().sketch.as_ref()),
        true,
    );
}

/// Before the first epoch cut there is no snapshot at all — the WAL
/// alone must carry recovery, and its header stamps (spec with seed,
/// dispatch geometry) are enforced exactly like the snapshot's.
#[test]
fn wal_replays_without_any_snapshot_and_enforces_stamps() {
    let s = stream(0x1C);
    let spec = conformance_spec(SketchFamily::CountSketch);
    let cfg = wal_config(s.len(), 3);
    let stop = 4 * cfg.chunk; // well short of the first cut
    assert!(stop < cfg.epoch as usize);

    let dir = TempDir::new("no-snap");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates[..stop]).unwrap();
    drop(svc);
    assert!(
        dir.store().epochs().unwrap().is_empty(),
        "no epoch completed, so no snapshot may exist"
    );

    // Wrong seed ⇒ the log's updates belong to different hash functions.
    let wrong_seed = spec.with_seed(spec.seed ^ 1);
    assert!(matches!(
        StreamService::recover(registry(), &wrong_seed, cfg, dir.store()),
        Err(ServiceError::Persist(PersistError::SpecMismatch { .. }))
    ));
    // Wrong dispatch geometry ⇒ replay would land cells on other workers.
    let wrong_cfg = cfg.with_chunk(cfg.chunk * 2);
    assert!(matches!(
        StreamService::recover(registry(), &spec, wrong_cfg, dir.store()),
        Err(ServiceError::Persist(PersistError::ConfigMismatch { .. }))
    ));
    // Durability knobs are *not* part of the stamp: the same log may be
    // reopened with a different fsync policy or retention.
    let relaxed = cfg.with_wal(WalPolicy::Epoch).with_retain(2);
    let rec = StreamService::recover(registry(), &spec, relaxed, dir.store()).unwrap();
    assert_eq!(rec.replay_from(), stop);
    drop(rec);

    // The true stamps replay the full dispatched prefix.
    let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(rec.replay_from(), stop);
    assert_eq!(rec.epochs_cut(), 0);
    let mut got = rec.ingest(&s.updates[stop..]).unwrap();
    got.extend(rec.finish().unwrap());
    let mut seq = registry().build(&spec).unwrap();
    seq.update_batch(&s.updates);
    assert_probes_match(
        "snapshot-free recovery",
        &probe(seq.as_ref()),
        &probe(got.last().unwrap().sketch.as_ref()),
        true,
    );
}

/// The `epoch` fsync policy logs every cell too (it only relaxes *when*
/// the data must hit the platter); an in-process crash — where nothing
/// in the page cache is lost — therefore recovers exactly like `batch`.
#[test]
fn epoch_policy_smoke_recovers_in_process() {
    let s = stream(0x1D);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = wal_config(s.len(), 3).with_wal(WalPolicy::Epoch);
    let stop = 11 * cfg.chunk;

    let dir = TempDir::new("epoch-policy");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates[..stop]).unwrap();
    drop(svc);

    let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(rec.replay_from(), stop);
    let mut got = rec.ingest(&s.updates[stop..]).unwrap();
    got.extend(rec.finish().unwrap());
    let mut seq = registry().build(&spec).unwrap();
    seq.update_batch(&s.updates);
    assert_probes_match(
        "epoch-policy recovery",
        &probe(seq.as_ref()),
        &probe(got.last().unwrap().sketch.as_ref()),
        true,
    );
}

/// `retain=N` keeps the store bounded: after many cuts only the newest
/// `N` snapshot files remain, the newest is always the valid one
/// recovery resumes from, and `retain=0` (the default) keeps everything.
#[test]
fn retain_prunes_old_snapshots_but_never_the_newest() {
    let s = stream(0x1E);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = ServiceConfig::default()
        .with_epoch((s.len() as u64) / 6) // six cuts
        .with_threads(2)
        .with_chunk(512)
        .with_wal(WalPolicy::Batch)
        .with_retain(2);
    let dir = TempDir::new("retain");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    let mut snaps = svc.ingest(&s.updates).unwrap();
    snaps.extend(svc.finish().unwrap());
    let cuts = snaps.last().unwrap().report.epoch;
    assert!(cuts >= 6);

    let epochs = dir.store().epochs().unwrap();
    assert_eq!(epochs.len(), 2, "retain=2 must leave two files: {epochs:?}");
    assert_eq!(*epochs.last().unwrap(), cuts, "the newest cut must survive");

    // And the survivor is the one recovery resumes from.
    let rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(rec.epochs_cut(), cuts);
    assert_eq!(rec.replay_from(), s.len());
}

/// A deliberately slow *persistable* test double, so a tiny
/// `drop`-policy queue overflows while every shed cell still reaches the
/// log (as a count + mass marker, keeping the offered cursor exact).
#[derive(Clone)]
struct SlowDurableSketch(FrequencyVector);

impl SpaceUsage for SlowDurableSketch {
    fn space(&self) -> SpaceReport {
        self.0.space()
    }
}

impl Sketch for SlowDurableSketch {
    fn update(&mut self, item: Item, delta: i64) {
        Sketch::update(&mut self.0, item, delta);
    }
    fn update_batch(&mut self, batch: &[Update]) {
        std::thread::sleep(std::time::Duration::from_micros(1500));
        Sketch::update_batch(&mut self.0, batch);
    }
}

impl PointQuery for SlowDurableSketch {
    fn point(&self, item: Item) -> f64 {
        self.0.point(item)
    }
}

impl Mergeable for SlowDurableSketch {
    fn merge_from(&mut self, other: &Self) {
        self.0.merge_from(&other.0);
    }
}

impl SketchState for SlowDurableSketch {
    fn save_state(&self, w: &mut StateWriter) {
        self.0.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.0.load_state(r)
    }
}

bd_stream::impl_dyn_sketch!(SlowDurableSketch, point, merge, persist);

/// A fresh registry serving [`SlowDurableSketch`] under the `exact`
/// family name.
fn slow_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(
        FamilyInfo {
            family: SketchFamily::Exact,
            summary: "deliberately slow durable exact vector (overload + WAL double)",
            caps: Capabilities {
                point: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                ..Default::default()
            },
            space: "O(n)",
            type_name: std::any::type_name::<SlowDurableSketch>(),
        },
        |spec| Box::new(SlowDurableSketch(FrequencyVector::new(spec.n))),
    );
    reg
}

/// Drop-policy accounting survives a restart: shed cells are logged as
/// count+mass markers, so after a crash and recovery the reconciliation
/// `offered = ingested + dropped` (in updates and in mass) still closes
/// exactly over the *whole* stream — nothing offered is counted twice,
/// nothing shed is forgotten.
#[test]
fn drop_policy_accounting_reconciles_across_restart() {
    let s = stream(0xD1);
    let reg = slow_registry();
    let spec = SketchSpec::new(SketchFamily::Exact)
        .with_n(1 << 10)
        .with_alpha(3.0);
    // `epoch` fsync policy: a per-cell fsync (`batch`) would throttle the
    // producer into never overflowing the tiny queue — the shed cells this
    // test needs logged. The log contents are identical either way.
    let cfg = ServiceConfig::default()
        .with_epoch(512)
        .with_threads(2)
        .with_chunk(64)
        .with_depth(1)
        .with_overflow(OverflowPolicy::Drop)
        .with_wal(WalPolicy::Epoch);

    let dir = TempDir::new("drop");
    let stop = s.len() * 3 / 5;
    let mut svc = StreamService::start(&reg, &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    let snaps = svc.ingest(&s.updates[..stop]).unwrap();
    let pre = snaps.last().unwrap().report;
    assert!(
        pre.total_dropped_updates > 0,
        "queue never overflowed — the slow sketch is not slow enough"
    );
    drop(svc);

    // Recovery replays ingested cells as ingested and shed cells as
    // shed: the logged outcome is replayed, never re-decided, so the
    // cursor and both sides of the ledger line up exactly.
    let mut rec = StreamService::recover(&reg, &spec, cfg, dir.store()).unwrap();
    let from = rec.replay_from();
    assert!(from >= pre.total_offered_updates() && from <= stop);
    let mut got = rec.ingest(&s.updates[from..]).unwrap();
    got.extend(rec.finish().unwrap());

    let last = got.last().unwrap().report;
    assert_eq!(
        last.total_updates + last.total_dropped_updates,
        s.len(),
        "offered = ingested + dropped must close over the restart"
    );
    assert_eq!(last.total_offered_updates(), s.len());
    assert_eq!(last.total_mass() + last.total_dropped_mass, s.total_mass());
    assert!(
        last.total_dropped_updates >= pre.total_dropped_updates,
        "pre-crash sheds vanished from the ledger"
    );

    // The sketch state agrees with the ledger's ingested side.
    let p = got
        .last()
        .unwrap()
        .sketch
        .as_point()
        .expect("SlowDurableSketch answers point queries");
    let net: f64 = (0..1 << 10).map(|i| p.point(i)).sum();
    assert_eq!(
        net as i64,
        last.total_inserted as i64 - last.total_deleted as i64
    );
}

/// The log never grows without bound: every persisted cut deletes the
/// sealed segments it covers, so after a clean `finish` only the live
/// (empty) segment remains on disk.
#[test]
fn persisted_cuts_truncate_the_log() {
    let s = stream(0x1F);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = wal_config(s.len(), 2);
    let dir = TempDir::new("truncate");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates).unwrap();
    svc.finish().unwrap();

    let segs = wal_segments(dir.store().dir()).unwrap();
    assert!(
        segs.len() <= 1,
        "sealed segments behind durable snapshots must be deleted: {segs:?}"
    );
    for (_, path) in &segs {
        let scan = bd_stream::read_segment(path).unwrap();
        assert!(scan.records.is_empty(), "a covered record survived");
    }

    // Nothing left to replay: recovery resumes exactly at the end.
    let rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(rec.replay_from(), s.len());
}
