//! Experiment E12: run the upper-bound algorithms on the §8 lower-bound
//! constructions. These instances are hard for *space* (they encode
//! communication problems) — a correct algorithm must still answer them,
//! which is precisely what the reductions exploit. Each test also verifies
//! the construction produces the promised α. Ingestion goes through the
//! shared `StreamRunner`.

use bounded_deletions::prelude::*;

#[test]
fn heavy_hitters_decode_augmented_indexing() {
    // Theorem 12: recovering the planted block via ε-heavy hitters is
    // exactly what Bob does to solve Ind.
    let eps = 0.05;
    let alpha = 216.0;
    let mut ok = 0;
    let runner = StreamRunner::new();
    for seed in 0..5u64 {
        let inst = AugmentedIndexingHH::new(1 << 16, eps, alpha).generate_seeded(seed);
        let truth = FrequencyVector::from_stream(&inst.stream);
        assert!(truth.alpha_strong() <= 3.0 * alpha * alpha);

        let mut hh: AlphaHeavyHitters = build_sketch(
            &SketchSpec::new(SketchFamily::AlphaHh)
                .with_n(inst.stream.n)
                .with_epsilon(eps)
                .with_alpha(truth.alpha_l1().max(1.0))
                .with_seed(1000 + seed),
        );
        runner.run(&mut hh, &inst.stream);
        let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
        if inst.planted.iter().all(|i| got.contains(i)) {
            ok += 1;
        }
    }
    assert!(
        ok >= 4,
        "decoded the planted block in only {ok}/5 instances"
    );
}

#[test]
fn support_sampler_survives_block_instance() {
    // Theorem 20: the surviving block dominates the support; a correct
    // support sampler must return items from it.
    let inst = SupportHard::new(1 << 20, 64).generate_seeded(10);
    let truth = FrequencyVector::from_stream(&inst.stream);
    let mut s: AlphaSupportSamplerSet = build_sketch(
        &SketchSpec::new(SketchFamily::AlphaSupportSet)
            .with_n(inst.stream.n)
            .with_epsilon(0.25)
            .with_alpha(truth.alpha_l0().max(1.0))
            .with_k(4)
            .with_seed(10),
    );
    StreamRunner::new().run(&mut s, &inst.stream);
    let got = s.query();
    assert!(
        got.len() >= 4.min(truth.l0() as usize),
        "returned {} items",
        got.len()
    );
    for i in &got {
        assert!(truth.get(*i) != 0);
    }
}

#[test]
fn inner_product_decodes_planted_bit() {
    // Theorem 21: Bob decides y_{i*} by thresholding IP(f, g) at
    // (3/2)·α·10^{j*}. Our estimator must make that decision correctly.
    let alpha = 100u64;
    let eps = 0.05;
    let mut correct = 0;
    let trials = 8;
    let runner = StreamRunner::new();
    for seed in 0..trials {
        let inst = InnerProductHard::new(1 << 16, eps, alpha).generate_seeded(20 + seed);
        let vf = FrequencyVector::from_stream(&inst.f);
        let mut ip = AlphaInnerProduct::from_spec(
            &SketchSpec::new(SketchFamily::AlphaIp)
                .with_n(1 << 16)
                .with_epsilon(0.01)
                .with_alpha(vf.alpha_strong().clamp(1.0, 1e6))
                .with_seed(20 + seed),
        );
        runner.run(&mut ip.f, &inst.f);
        runner.run(&mut ip.g, &inst.g);
        let threshold = 1.5 * alpha as f64 * 10f64.powi(inst.query_block as i32 + 1);
        let decoded_bit = ip.estimate() >= threshold;
        if decoded_bit == inst.bit {
            correct += 1;
        }
    }
    assert!(correct >= 6, "decoded the bit in only {correct}/{trials}");
}

#[test]
fn l1_estimator_on_geometric_block_stream() {
    // Theorem 16's instance shape: geometric weights α·10^i + 1 with the
    // suffix deleted. The strict L1 estimator must track the surviving mass.
    let alpha = 216.0;
    let inst = AugmentedIndexingHH::new(1 << 14, 0.1, alpha).generate_seeded(30);
    let truth = FrequencyVector::from_stream(&inst.stream);
    let realized = truth.alpha_l1();
    let mut est: AlphaL1Estimator = build_sketch(
        &SketchSpec::new(SketchFamily::AlphaL1)
            .with_n(inst.stream.n)
            .with_epsilon(0.2)
            .with_alpha(realized.max(1.0))
            .with_seed(30),
    );
    StreamRunner::new().run(&mut est, &inst.stream);
    let t = truth.l1() as f64;
    assert!(
        (est.estimate() - t).abs() / t < 0.35,
        "estimate {} vs {t}",
        est.estimate()
    );
}

#[test]
fn unbounded_deletion_streams_break_the_alpha_window_gracefully() {
    // On a stream violating every α promise (α ≈ 20000), algorithms sized
    // for α = 4 may lose accuracy but must not panic or return garbage
    // like negative norms.
    let stream = UnboundedDeletionGen::new(1 << 12, 100_000, 10).generate_seeded(40);
    let spec = SketchSpec::new(SketchFamily::AlphaL1)
        .with_n(stream.n)
        .with_epsilon(0.2)
        .with_alpha(4.0);
    let mut l1: AlphaL1Estimator = build_sketch(&spec.with_seed(41));
    let mut l0: AlphaL0Estimator =
        build_sketch(&spec.with_family(SketchFamily::AlphaL0).with_seed(42));
    let mut hh: AlphaHeavyHitters =
        build_sketch(&spec.with_family(SketchFamily::AlphaHh).with_seed(43));
    StreamRunner::new().run_each(&mut [&mut l1 as &mut dyn Sketch, &mut l0, &mut hh], &stream);
    assert!(l1.estimate() >= 0.0);
    assert!(l0.estimate() >= 0.0);
    let _ = hh.query();
}
