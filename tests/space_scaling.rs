//! Space-scaling integration tests (the Figure 1 shape, in miniature):
//! α-property algorithms' counter footprints grow with `log α` and stay
//! bounded as the stream grows, while turnstile baselines grow with the
//! stream (i.e. with `log n`/`log m`). Space is read off the `RunReport`s
//! the shared `StreamRunner` produces.

use bounded_deletions::prelude::*;

/// Bits per counter for a space report.
fn per_counter(rep: &SpaceReport) -> f64 {
    rep.counter_bits as f64 / rep.counters.max(1) as f64
}

/// A flat workload: `mass` unit insertions cycling over `width` items.
fn cyclic(n: u64, width: u64, mass: u64) -> StreamBatch {
    StreamBatch::new(n, (0..mass).map(|i| Update::insert(i % width, 1)).collect())
}

#[test]
fn csss_counter_width_tracks_alpha_not_stream_length() {
    // Budgets pinned to S = 256·α² so thinning is active for every α at
    // this stream length (the Params defaults keep α = 32 un-thinned until
    // m ≈ 2.5×10⁷, which is out of test budget).
    let stream = cyclic(1 << 10, 512, 600_000);
    let runner = StreamRunner::new();
    let mut widths = Vec::new();
    for alpha in [2.0f64, 8.0, 32.0] {
        let mut c: Csss = build_sketch(
            &SketchSpec::new(SketchFamily::Csss)
                .with_n(1 << 10)
                .with_alpha(alpha)
                .with_k(8)
                .with_depth(5)
                .with_budget((256.0 * alpha * alpha) as u64)
                .with_seed(1),
        );
        let report = runner.run(&mut c, &stream);
        assert!(c.level() > 0, "thinning must be active at α = {alpha}");
        widths.push(per_counter(&report.space));
    }
    // Widths grow with log α...
    assert!(widths[0] < widths[1] && widths[1] < widths[2], "{widths:?}");
    // ...by roughly 2 bits per 4× α (log α² = 2 log α), far from log m.
    assert!(widths[2] - widths[0] < 12.0, "{widths:?}");
}

#[test]
fn csss_counter_width_saturates_in_stream_length() {
    // Doubling the stream once thinning is active must NOT widen counters
    // (the log n factor is gone); the baseline Countsketch keeps growing.
    let short_stream = cyclic(1 << 10, 64, 150_000);
    let long_stream = cyclic(1 << 10, 64, 2_400_000);
    let runner = StreamRunner::new();

    let csss_spec = SketchSpec::new(SketchFamily::Csss)
        .with_n(1 << 20)
        .with_epsilon(0.1)
        .with_alpha(4.0)
        .with_k(8)
        .with_depth(5);
    let cs_spec = SketchSpec::new(SketchFamily::CountSketch)
        .with_n(1 << 20)
        .with_depth(5)
        .with_width(48);
    let mut short: Csss = build_sketch(&csss_spec.with_seed(2));
    let mut long: Csss = build_sketch(&csss_spec.with_seed(3));
    let mut cs_short: CountSketch<i64> = build_sketch(&cs_spec.with_seed(4));
    let mut cs_long: CountSketch<i64> = build_sketch(&cs_spec.with_seed(5));

    let rep_short = runner.run(&mut short, &short_stream);
    let rep_long = runner.run(&mut long, &long_stream);
    let rep_cs_short = runner.run(&mut cs_short, &short_stream);
    let rep_cs_long = runner.run(&mut cs_long, &long_stream);

    let (a, b) = (per_counter(&rep_short.space), per_counter(&rep_long.space));
    assert!(b - a <= 2.0, "CSSS width grew {a} → {b} with stream length");
    let (ca, cb) = (
        per_counter(&rep_cs_short.space),
        per_counter(&rep_cs_long.space),
    );
    assert!(
        cb - ca >= 2.5,
        "baseline width should grow ~log m: {ca} → {cb}"
    );
}

#[test]
fn windowed_l0_rows_scale_with_alpha_while_baseline_scales_with_n() {
    let runner = StreamRunner::new();
    for n_bits in [18u32, 24] {
        let n = 1u64 << n_bits;
        let stream = L0AlphaGen::new(n, 3_000, 2.0).generate_seeded(n_bits as u64);
        let mut windowed: AlphaL0Estimator = build_sketch(
            &SketchSpec::new(SketchFamily::AlphaL0)
                .with_n(n)
                .with_epsilon(0.25)
                .with_alpha(2.0)
                .with_seed(3),
        );
        runner.run(&mut windowed, &stream);
        // Live rows are α-determined, essentially flat in n.
        assert!(
            windowed.peak_live_rows() <= 22,
            "n = 2^{n_bits}: {} live rows",
            windowed.peak_live_rows()
        );
    }
}

#[test]
fn support_sampler_beats_baseline_space_on_large_universes() {
    let n = 1u64 << 30;
    let stream = L0AlphaGen::new(n, 800, 2.0).generate_seeded(4);
    let k = 8;
    let spec = SketchSpec::new(SketchFamily::AlphaSupport)
        .with_n(n)
        .with_epsilon(0.25)
        .with_alpha(2.0)
        .with_k(k);
    let mut ours: AlphaSupportSampler = build_sketch(&spec.with_seed(4));
    let mut baseline: SupportSamplerTurnstile = build_sketch(
        &spec
            .with_family(SketchFamily::SupportTurnstile)
            .with_seed(5),
    );
    let runner = StreamRunner::new();
    let rep_ours = runner.run(&mut ours, &stream);
    let rep_base = runner.run(&mut baseline, &stream);
    let (a, b) = (rep_ours.space_bits(), rep_base.space_bits());
    assert!(
        a < b,
        "windowed sampler ({a} bits) should undercut the log-n-level baseline ({b} bits)"
    );
    // Both must still work.
    assert!(ours.query().len() >= k.min(800));
    assert!(baseline.query().len() >= k.min(800));
}

#[test]
fn interval_sampling_counters_stay_narrow() {
    // Figure 4's counters hold ≤ poly(s) samples no matter how long the
    // stream runs.
    let stream = cyclic(1 << 10, 1, 1_500_000);
    let mut est: AlphaL1Estimator = build_sketch(
        &SketchSpec::new(SketchFamily::AlphaL1)
            .with_n(1 << 10)
            .with_budget(1 << 7)
            .with_seed(5),
    );
    let report = StreamRunner::new().run(&mut est, &stream);
    assert!(
        per_counter(&report.space) <= 30.0,
        "interval counters {} bits wide",
        per_counter(&report.space)
    );
    assert!((est.estimate() - 1_500_000.0).abs() / 1_500_000.0 < 0.4);
}
