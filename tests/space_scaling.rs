//! Space-scaling integration tests (the Figure 1 shape, in miniature):
//! α-property algorithms' counter footprints grow with `log α` and stay
//! bounded as the stream grows, while turnstile baselines grow with the
//! stream (i.e. with `log n`/`log m`).

use bounded_deletions::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bits per counter for a space report.
fn per_counter(rep: &SpaceReport) -> f64 {
    rep.counter_bits as f64 / rep.counters.max(1) as f64
}

#[test]
fn csss_counter_width_tracks_alpha_not_stream_length() {
    // Budgets pinned to S = 256·α² so thinning is active for every α at
    // this stream length (the Params defaults keep α = 32 un-thinned until
    // m ≈ 2.5×10⁷, which is out of test budget).
    let mut widths = Vec::new();
    for alpha in [2.0f64, 8.0, 32.0] {
        let mut rng = StdRng::seed_from_u64(1);
        let budget = (256.0 * alpha * alpha) as u64;
        let mut c = bd_core::Csss::new(&mut rng, 8, 5, budget);
        for i in 0..600_000u64 {
            c.update(&mut rng, i % 512, 1);
        }
        assert!(c.level() > 0, "thinning must be active at α = {alpha}");
        widths.push(per_counter(&c.space()));
    }
    // Widths grow with log α...
    assert!(widths[0] < widths[1] && widths[1] < widths[2], "{widths:?}");
    // ...by roughly 2 bits per 4× α (log α² = 2 log α), far from log m.
    assert!(widths[2] - widths[0] < 12.0, "{widths:?}");
}

#[test]
fn csss_counter_width_saturates_in_stream_length() {
    // Doubling the stream once thinning is active must NOT widen counters
    // (the log n factor is gone); the baseline Countsketch keeps growing.
    let mut rng = StdRng::seed_from_u64(2);
    let params = Params::practical(1 << 20, 0.1, 4.0);
    let mut short = bd_core::Csss::new(&mut rng, 8, 5, params.csss_sample_budget());
    let mut long = bd_core::Csss::new(&mut rng, 8, 5, params.csss_sample_budget());
    let mut cs_short = CountSketch::<i64>::new(&mut rng, 5, 48);
    let mut cs_long = CountSketch::<i64>::new(&mut rng, 5, 48);
    for i in 0..300_000u64 {
        short.update(&mut rng, i % 64, 1);
        cs_short.update(i % 64, 1);
    }
    for i in 0..2_400_000u64 {
        long.update(&mut rng, i % 64, 1);
        cs_long.update(i % 64, 1);
    }
    let (a, b) = (per_counter(&short.space()), per_counter(&long.space()));
    assert!(b - a <= 2.0, "CSSS width grew {a} → {b} with stream length");
    let (ca, cb) = (per_counter(&cs_short.space()), per_counter(&cs_long.space()));
    assert!(cb - ca >= 2.5, "baseline width should grow ~log m: {ca} → {cb}");
}

#[test]
fn windowed_l0_rows_scale_with_alpha_while_baseline_scales_with_n() {
    let mut rng = StdRng::seed_from_u64(3);
    for n_bits in [18u32, 24] {
        let n = 1u64 << n_bits;
        let stream = L0AlphaGen::new(n, 3_000, 2.0).generate(&mut rng);
        let params = Params::practical(n, 0.25, 2.0);
        let mut windowed = AlphaL0Estimator::new(&mut rng, &params);
        for u in &stream {
            windowed.update(&mut rng, u.item, u.delta);
        }
        // Live rows are α-determined, essentially flat in n.
        assert!(
            windowed.peak_live_rows() <= 22,
            "n = 2^{n_bits}: {} live rows",
            windowed.peak_live_rows()
        );
    }
}

#[test]
fn support_sampler_beats_baseline_space_on_large_universes() {
    let mut rng = StdRng::seed_from_u64(4);
    let n = 1u64 << 30;
    let stream = L0AlphaGen::new(n, 800, 2.0).generate(&mut rng);
    let params = Params::practical(n, 0.25, 2.0);
    let k = 8;
    let mut ours = bd_core::AlphaSupportSampler::new(&mut rng, &params, k);
    let mut baseline = SupportSamplerTurnstile::new(&mut rng, n, k);
    for u in &stream {
        ours.update(&mut rng, u.item, u.delta);
        baseline.update(u.item, u.delta);
    }
    let (a, b) = (ours.space_bits(), baseline.space_bits());
    assert!(
        a < b,
        "windowed sampler ({a} bits) should undercut the log-n-level baseline ({b} bits)"
    );
    // Both must still work.
    assert!(ours.query().len() >= k.min(800));
    assert!(baseline.query().len() >= k.min(800));
}

#[test]
fn interval_sampling_counters_stay_narrow() {
    // Figure 4's counters hold ≤ poly(s) samples no matter how long the
    // stream runs.
    let mut rng = StdRng::seed_from_u64(5);
    let mut est = AlphaL1Estimator::with_budget(1 << 7);
    for _ in 0..1_500_000u64 {
        est.update(&mut rng, 3, 1);
    }
    let rep = est.space();
    assert!(
        per_counter(&rep) <= 30.0,
        "interval counters {} bits wide",
        per_counter(&rep)
    );
    assert!((est.estimate() - 1_500_000.0).abs() / 1_500_000.0 < 0.4);
}
