//! End-to-end integration tests: every α-property algorithm against every
//! relevant workload family, ingested through the shared `StreamRunner`,
//! validated against exact ground truth.

use bounded_deletions::prelude::*;

#[test]
fn heavy_hitters_across_workloads() {
    let eps = 0.05;
    let runner = StreamRunner::new();
    let streams = vec![
        BoundedDeletionGen::new(1 << 14, 50_000, 2.0).generate_seeded(11),
        BoundedDeletionGen::new(1 << 14, 50_000, 16.0).generate_seeded(12),
        StrongAlphaGen::new(1 << 14, 400, 4.0).generate_seeded(13),
    ];
    for (t, stream) in streams.into_iter().enumerate() {
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l1().max(1.0);
        let mut hh: AlphaHeavyHitters = build_sketch(
            &SketchSpec::new(SketchFamily::AlphaHh)
                .with_n(stream.n)
                .with_epsilon(eps)
                .with_alpha(alpha)
                .with_seed(100 + t as u64),
        );
        let report = runner.run(&mut hh, &stream);
        assert_eq!(report.updates, stream.len());
        let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
        for i in truth.l1_heavy_hitters(eps) {
            assert!(got.contains(&i), "missed heavy hitter {i} (α = {alpha:.1})");
        }
        let l1 = truth.l1() as f64;
        for &i in &got {
            assert!(
                truth.get(i).unsigned_abs() as f64 >= eps / 2.0 * l1,
                "false positive {i}"
            );
        }
    }
}

#[test]
fn l1_estimation_strict_and_general_agree_with_truth() {
    let stream = BoundedDeletionGen::new(1 << 12, 150_000, 6.0).generate_seeded(2);
    let truth = FrequencyVector::from_stream(&stream).l1() as f64;
    let spec = SketchSpec::new(SketchFamily::AlphaL1)
        .with_n(stream.n)
        .with_epsilon(0.2)
        .with_alpha(6.0);

    let mut strict: AlphaL1Estimator = build_sketch(&spec.with_seed(20));
    let mut general: AlphaL1General =
        build_sketch(&spec.with_family(SketchFamily::AlphaL1General).with_seed(21));
    let runner = StreamRunner::new();
    runner.run_each(&mut [&mut strict as &mut dyn Sketch, &mut general], &stream);
    assert!(
        (strict.estimate() - truth).abs() / truth < 0.3,
        "strict estimate {} vs {truth}",
        strict.estimate()
    );
    assert!(
        (general.estimate() - truth).abs() / truth < 0.35,
        "general estimate {} vs {truth}",
        general.estimate()
    );
}

#[test]
fn l0_estimation_on_sensor_and_synthetic_streams() {
    let streams = vec![
        L0AlphaGen::new(1 << 20, 2_500, 2.0).generate_seeded(31),
        SensorGen::new(1 << 20, 1_500, 4_500).generate_seeded(32),
    ];
    let runner = StreamRunner::new();
    for (t, stream) in streams.into_iter().enumerate() {
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l0();
        let mut est: AlphaL0Estimator = build_sketch(
            &SketchSpec::new(SketchFamily::AlphaL0)
                .with_n(stream.n)
                .with_epsilon(0.15)
                .with_alpha(alpha)
                .with_seed(300 + t as u64),
        );
        runner.run(&mut est, &stream);
        let e = est.estimate();
        let t = truth.l0() as f64;
        assert!(
            (e - t).abs() / t < 0.5,
            "L0 estimate {e} vs {t} (α = {alpha:.1})"
        );
    }
}

#[test]
fn support_sampler_feeds_downstream_consumers() {
    // The classic dynamic-graph pattern: recover support items, then verify
    // their exact values with a second pass (here: against ground truth).
    let stream = L0AlphaGen::new(1 << 16, 300, 3.0).generate_seeded(4);
    let truth = FrequencyVector::from_stream(&stream);
    let mut s: AlphaSupportSamplerSet = build_sketch(
        &SketchSpec::new(SketchFamily::AlphaSupportSet)
            .with_n(stream.n)
            .with_epsilon(0.25)
            .with_alpha(3.0)
            .with_k(12)
            .with_seed(40),
    );
    StreamRunner::new().run(&mut s, &stream);
    let got = s.query();
    assert!(got.len() >= 12, "only {} recovered", got.len());
    for i in got {
        assert!(truth.get(i) > 0, "item {i} not in the support");
    }
}

#[test]
fn inner_product_on_rdc_pairs() {
    // Compare two file versions' signature multisets. The inner-product pair
    // is two sketches sharing a hash family; each side ingests its own
    // stream through the runner.
    let f = RdcGen::new(1 << 20, 8_000, 0.3).generate_seeded(51);
    let g = RdcGen::new(1 << 20, 8_000, 0.3).generate_seeded(52);
    let vf = FrequencyVector::from_stream(&f);
    let vg = FrequencyVector::from_stream(&g);
    let eps = 0.05;
    let alpha = vf.alpha_l1().max(vg.alpha_l1()).max(1.0);
    let mut ip = AlphaInnerProduct::from_spec(
        &SketchSpec::new(SketchFamily::AlphaIp)
            .with_n(1 << 20)
            .with_epsilon(eps)
            .with_alpha(alpha)
            .with_seed(50),
    );
    let runner = StreamRunner::new();
    runner.run(&mut ip.f, &f);
    runner.run(&mut ip.g, &g);
    let bound = eps * vf.l1() as f64 * vg.l1() as f64;
    let err = (ip.estimate() - vf.inner_product(&vg) as f64).abs();
    assert!(err <= 2.0 * bound, "error {err} vs bound {bound}");
}

#[test]
fn alpha_one_matches_insertion_only_behaviour() {
    // α = 1 degenerates to the insertion-only model: everything should be
    // near-exact.
    let stream = BoundedDeletionGen::new(1 << 10, 40_000, 1.0).generate_seeded(6);
    let truth = FrequencyVector::from_stream(&stream);
    let spec = SketchSpec::new(SketchFamily::AlphaL1)
        .with_n(stream.n)
        .with_epsilon(0.1)
        .with_alpha(1.0);
    let mut l1: AlphaL1Estimator = build_sketch(&spec.with_seed(60));
    let mut hh: AlphaHeavyHitters =
        build_sketch(&spec.with_family(SketchFamily::AlphaHh).with_seed(61));
    StreamRunner::new().run_each(&mut [&mut l1 as &mut dyn Sketch, &mut hh], &stream);
    let t = truth.l1() as f64;
    assert!((l1.estimate() - t).abs() / t < 0.2);
    for i in truth.l1_heavy_hitters(0.1) {
        assert!(hh.query().iter().any(|&(j, _)| j == i));
    }
}

#[test]
fn weighted_updates_match_unit_expansion_semantics() {
    // Feeding (i, 5) must behave like five unit updates in expectation:
    // compare CSSS estimates across the two encodings.
    let spec = SketchSpec::new(SketchFamily::Csss)
        .with_n(1 << 10)
        .with_epsilon(0.1)
        .with_alpha(2.0)
        .with_k(8)
        .with_depth(13);
    let mut weighted: Csss = build_sketch(&spec.with_seed(70));
    let mut expanded: Csss = build_sketch(&spec.with_seed(71));
    // Sparse support (8 items over 48 buckets/row, deep median) keeps
    // collision noise below the signal, so both encodings are near-exact.
    let mut weighted_updates = Vec::new();
    let mut expanded_updates = Vec::new();
    for i in 0..8u64 {
        weighted_updates.push(Update::insert(i, 50));
        weighted_updates.push(Update::delete(i, 20));
        expanded_updates.extend((0..50).map(|_| Update::insert(i, 1)));
        expanded_updates.extend((0..20).map(|_| Update::delete(i, 1)));
    }
    let runner = StreamRunner::new();
    runner.run(&mut weighted, &StreamBatch::new(1 << 10, weighted_updates));
    runner.run(&mut expanded, &StreamBatch::new(1 << 10, expanded_updates));
    for i in 0..8u64 {
        let (w, e) = (weighted.estimate(i), expanded.estimate(i));
        assert!(
            (w - 30.0).abs() < 20.0 && (e - 30.0).abs() < 20.0,
            "weighted {w} / expanded {e} should both track f_i = 30"
        );
    }
}

#[test]
fn sharded_ingestion_via_merge_matches_single_pass() {
    // The Mergeable path end to end: shard a stream across four workers,
    // each with an identically seeded Csss, merge, and answer point queries
    // as well as the single-pass sketch does.
    let stream = BoundedDeletionGen::new(1 << 12, 80_000, 4.0).generate_seeded(80);
    let truth = FrequencyVector::from_stream(&stream);
    let spec = SketchSpec::new(SketchFamily::Csss)
        .with_n(stream.n)
        .with_epsilon(0.1)
        .with_alpha(4.0)
        .with_k(16)
        .with_seed(81);

    let runner = StreamRunner::new();
    let quarter = stream.len() / 4;
    let mut merged: Option<Csss> = None;
    for w in 0..4 {
        let lo = w * quarter;
        let hi = if w == 3 {
            stream.len()
        } else {
            (w + 1) * quarter
        };
        let shard = StreamBatch::new(stream.n, stream.updates[lo..hi].to_vec());
        let mut sketch: Csss = build_sketch(&spec);
        runner.run(&mut sketch, &shard);
        merged = Some(match merged {
            None => sketch,
            Some(mut acc) => {
                acc.merge_from(&sketch);
                acc
            }
        });
    }
    let merged = merged.unwrap();
    assert_eq!(merged.position(), stream.total_mass());

    let bound = 2.0 * (truth.err_k(16, 2) / 4.0 + 0.1 * truth.l1() as f64);
    let mut bad = 0usize;
    for i in truth.support() {
        if (merged.estimate(i) - truth.get(i) as f64).abs() > bound {
            bad += 1;
        }
    }
    assert!(
        bad <= truth.l0() as usize / 25,
        "{bad} merged-shard estimates outside the Theorem-1 envelope"
    );
}
