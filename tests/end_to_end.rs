//! End-to-end integration tests: every α-property algorithm against every
//! relevant workload family, validated against exact ground truth.

use bounded_deletions::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_stream<F: FnMut(&Update)>(stream: &StreamBatch, mut f: F) {
    for u in stream {
        f(u);
    }
}

#[test]
fn heavy_hitters_across_workloads() {
    let eps = 0.05;
    let mut rng = StdRng::seed_from_u64(1);
    let streams = vec![
        BoundedDeletionGen::new(1 << 14, 50_000, 2.0).generate(&mut rng),
        BoundedDeletionGen::new(1 << 14, 50_000, 16.0).generate(&mut rng),
        StrongAlphaGen::new(1 << 14, 400, 4.0).generate(&mut rng),
    ];
    for stream in streams {
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l1().max(1.0);
        let params = Params::practical(stream.n, eps, alpha);
        let mut hh = AlphaHeavyHitters::new_strict(&mut rng, &params);
        run_stream(&stream, |u| hh.update(&mut rng, u.item, u.delta));
        let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
        for i in truth.l1_heavy_hitters(eps) {
            assert!(got.contains(&i), "missed heavy hitter {i} (α = {alpha:.1})");
        }
        let l1 = truth.l1() as f64;
        for &i in &got {
            assert!(
                truth.get(i).unsigned_abs() as f64 >= eps / 2.0 * l1,
                "false positive {i}"
            );
        }
    }
}

#[test]
fn l1_estimation_strict_and_general_agree_with_truth() {
    let mut rng = StdRng::seed_from_u64(2);
    let stream = BoundedDeletionGen::new(1 << 12, 150_000, 6.0).generate(&mut rng);
    let truth = FrequencyVector::from_stream(&stream).l1() as f64;
    let params = Params::practical(stream.n, 0.2, 6.0);

    let mut strict = AlphaL1Estimator::new(&params);
    let mut general = AlphaL1General::new(&mut rng, &params);
    run_stream(&stream, |u| {
        strict.update(&mut rng, u.item, u.delta);
        general.update(&mut rng, u.item, u.delta);
    });
    assert!(
        (strict.estimate() - truth).abs() / truth < 0.3,
        "strict estimate {} vs {truth}",
        strict.estimate()
    );
    assert!(
        (general.estimate() - truth).abs() / truth < 0.35,
        "general estimate {} vs {truth}",
        general.estimate()
    );
}

#[test]
fn l0_estimation_on_sensor_and_synthetic_streams() {
    let mut rng = StdRng::seed_from_u64(3);
    let streams = vec![
        L0AlphaGen::new(1 << 20, 2_500, 2.0).generate(&mut rng),
        SensorGen::new(1 << 20, 1_500, 4_500).generate(&mut rng),
    ];
    for stream in streams {
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l0();
        let params = Params::practical(stream.n, 0.15, alpha);
        let mut est = AlphaL0Estimator::new(&mut rng, &params);
        run_stream(&stream, |u| est.update(&mut rng, u.item, u.delta));
        let e = est.estimate();
        let t = truth.l0() as f64;
        assert!(
            (e - t).abs() / t < 0.5,
            "L0 estimate {e} vs {t} (α = {alpha:.1})"
        );
    }
}

#[test]
fn support_sampler_feeds_downstream_consumers() {
    // The classic dynamic-graph pattern: recover support items, then verify
    // their exact values with a second pass (here: against ground truth).
    let mut rng = StdRng::seed_from_u64(4);
    let stream = L0AlphaGen::new(1 << 16, 300, 3.0).generate(&mut rng);
    let truth = FrequencyVector::from_stream(&stream);
    let params = Params::practical(stream.n, 0.25, 3.0);
    let mut s = AlphaSupportSamplerSet::new(&mut rng, &params, 12);
    run_stream(&stream, |u| s.update(&mut rng, u.item, u.delta));
    let got = s.query();
    assert!(got.len() >= 12, "only {} recovered", got.len());
    for i in got {
        assert!(truth.get(i) > 0, "item {i} not in the support");
    }
}

#[test]
fn inner_product_on_rdc_pairs() {
    // Compare two file versions' signature multisets.
    let mut rng = StdRng::seed_from_u64(5);
    let f = RdcGen::new(1 << 20, 8_000, 0.3).generate(&mut rng);
    let g = RdcGen::new(1 << 20, 8_000, 0.3).generate(&mut rng);
    let vf = FrequencyVector::from_stream(&f);
    let vg = FrequencyVector::from_stream(&g);
    let eps = 0.05;
    let alpha = vf.alpha_l1().max(vg.alpha_l1()).max(1.0);
    let params = Params::practical(1 << 20, eps, alpha);
    let mut ip = AlphaInnerProduct::new(&mut rng, &params);
    run_stream(&f, |u| ip.update_f(&mut rng, u.item, u.delta));
    run_stream(&g, |u| ip.update_g(&mut rng, u.item, u.delta));
    let bound = eps * vf.l1() as f64 * vg.l1() as f64;
    let err = (ip.estimate() - vf.inner_product(&vg) as f64).abs();
    assert!(err <= 2.0 * bound, "error {err} vs bound {bound}");
}

#[test]
fn alpha_one_matches_insertion_only_behaviour() {
    // α = 1 degenerates to the insertion-only model: everything should be
    // near-exact.
    let mut rng = StdRng::seed_from_u64(6);
    let stream = BoundedDeletionGen::new(1 << 10, 40_000, 1.0).generate(&mut rng);
    let truth = FrequencyVector::from_stream(&stream);
    let params = Params::practical(stream.n, 0.1, 1.0);
    let mut l1 = AlphaL1Estimator::new(&params);
    let mut hh = AlphaHeavyHitters::new_strict(&mut rng, &params);
    run_stream(&stream, |u| {
        l1.update(&mut rng, u.item, u.delta);
        hh.update(&mut rng, u.item, u.delta);
    });
    let t = truth.l1() as f64;
    assert!((l1.estimate() - t).abs() / t < 0.2);
    for i in truth.l1_heavy_hitters(0.1) {
        assert!(hh.query().iter().any(|&(j, _)| j == i));
    }
}

#[test]
fn weighted_updates_match_unit_expansion_semantics() {
    // Feeding (i, 5) must behave like five unit updates in expectation:
    // compare CSSS estimates across the two encodings.
    let mut rng = StdRng::seed_from_u64(7);
    let params = Params::practical(1 << 10, 0.1, 2.0);
    let mut weighted = bd_core::Csss::new(&mut rng, 8, 13, params.csss_sample_budget());
    let mut expanded = bd_core::Csss::new(&mut rng, 8, 13, params.csss_sample_budget());
    // Sparse support (8 items over 48 buckets/row, deep median) keeps
    // collision noise below the signal, so both encodings are near-exact.
    for i in 0..8u64 {
        weighted.update(&mut rng, i, 50);
        for _ in 0..50 {
            expanded.update(&mut rng, i, 1);
        }
        weighted.update(&mut rng, i, -20);
        for _ in 0..20 {
            expanded.update(&mut rng, i, -1);
        }
    }
    for i in 0..8u64 {
        let (w, e) = (weighted.estimate(i), expanded.estimate(i));
        assert!(
            (w - 30.0).abs() < 20.0 && (e - 30.0).abs() < 20.0,
            "weighted {w} / expanded {e} should both track f_i = 30"
        );
    }
}
