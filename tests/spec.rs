//! Tests for the declarative construction layer: spec round-trips,
//! `build_pair`/`build_n` determinism, and registry completeness (every
//! `Sketch` impl in the workspace is registered).

mod common;

use bd_stream::ShardedRunner;
use bounded_deletions::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;

/// `parse(display(spec)) == spec`, bit for bit, for every family — with
/// defaults only and with every optional override set.
#[test]
fn spec_strings_round_trip_for_every_family() {
    for info in registry().families() {
        let plain = SketchSpec::new(info.family);
        let parsed: SketchSpec = plain.to_string().parse().unwrap();
        assert_eq!(parsed, plain, "{}: default spec round-trip", info.family);

        let full = SketchSpec::new(info.family)
            .with_n(123_457)
            .with_epsilon(0.037)
            .with_alpha(7.5)
            .with_delta(0.11)
            .with_seed(0xDEAD_BEEF)
            .with_regime(Regime::Theory)
            .with_k(13)
            .with_budget(99_991)
            .with_c(3.25)
            .with_depth(7)
            .with_width(333);
        let parsed: SketchSpec = full.to_string().parse().unwrap();
        assert_eq!(parsed, full, "{}: full spec round-trip", info.family);
    }
}

/// The issue's canonical example string stays parseable and buildable.
#[test]
fn canonical_spec_string_builds() {
    let (spec, sk) = registry()
        .build_str("csss:n=1e6,eps=0.05,alpha=8,seed=42")
        .unwrap();
    assert_eq!(spec.family, SketchFamily::Csss);
    assert_eq!(spec.n, 1_000_000);
    assert!(sk.as_point().is_some());
}

/// `build_pair` returns bit-identical twins: after the same batch, every
/// query probe agrees bit-for-bit. This is the property sharded ingestion
/// (shard → merge) rests on.
#[test]
fn build_pair_is_deterministic_for_every_family() {
    let stream = BoundedDeletionGen::new(1 << 10, 2_000, 3.0).generate_seeded(0xBEEF);
    for info in registry().families() {
        let spec = SketchSpec::new(info.family)
            .with_n(1 << 10)
            .with_epsilon(0.25)
            .with_alpha(3.0)
            .with_seed(5);
        let (mut a, mut b) = registry().build_pair(&spec).unwrap();
        a.update_batch(&stream.updates);
        b.update_batch(&stream.updates);
        let fingerprint = |sk: &dyn DynSketch| -> Vec<u64> {
            let mut out = Vec::new();
            if let Some(p) = sk.as_point() {
                out.extend((0..512u64).map(|i| p.point(i).to_bits()));
            }
            if let Some(nm) = sk.as_norm() {
                out.push(nm.norm_estimate().to_bits());
            }
            if let Some(s) = sk.as_sample() {
                out.push(match s.sample() {
                    SampleOutcome::Sample { item, estimate } => item ^ estimate.to_bits(),
                    SampleOutcome::Fail => u64::MAX,
                });
            }
            if let Some(sp) = sk.as_support() {
                out.extend(sp.support_query());
            }
            out
        };
        assert_eq!(
            fingerprint(a.as_ref()),
            fingerprint(b.as_ref()),
            "{}: build_pair copies diverged",
            info.family
        );
    }
}

/// Property-style seeded sweep for `build_n` — the `ShardedRunner`'s
/// construction primitive: for every registered family, `n` copies built
/// from one spec are pairwise bit-identical after replaying the same
/// stream, across several seeds and copy counts.
#[test]
fn build_n_copies_are_pairwise_bit_identical_for_every_family() {
    for (case, (seed, copies)) in [(3u64, 3usize), (77, 4)].into_iter().enumerate() {
        let stream = common::stream(0xB0 + case as u64);
        for info in registry().families() {
            let spec = common::conformance_spec(info.family).with_seed(seed);
            let mut built = registry().build_n(&spec, copies).unwrap();
            assert_eq!(built.len(), copies);
            for sk in built.iter_mut() {
                StreamRunner::new().run(&mut **sk, &stream);
            }
            let first = common::probe(built[0].as_ref());
            for (i, sk) in built.iter().enumerate().skip(1) {
                common::assert_probes_match(
                    &format!("{} (build_n copy {i}, seed {seed})", info.family),
                    &first,
                    &common::probe(sk.as_ref()),
                    true,
                );
            }
        }
    }
}

/// `ShardedRunner` is reachable from the prelude-level API surface the
/// docs advertise (spec string → registry → sharded run).
#[test]
fn sharded_runner_drives_a_spec_string() {
    let (spec, _) = registry()
        .build_str("countsketch:n=2^10,eps=0.2,seed=5")
        .unwrap();
    let stream = common::stream(0xCE);
    let run = ShardedRunner::new(4)
        .run(registry(), &spec, &stream)
        .unwrap();
    assert_eq!(run.report().updates, stream.len());
    assert!(run.sketch.as_point().is_some());
}

/// Collect the target type names of every `impl ... Sketch for <Type>` in a
/// crate's `src/`, skipping `#[cfg(test)]` modules (test helpers are not
/// part of the public catalog).
fn sketch_impl_targets(dir: &Path, out: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            sketch_impl_targets(&path, out);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // Everything after the first #[cfg(test)] is test-module code in
        // this workspace's layout (one trailing tests module per file).
        let code = text.split("#[cfg(test)]").next().unwrap();
        for line in code.lines() {
            if line.trim_start().starts_with("//") {
                continue; // doc/comment lines mentioning impls
            }
            let Some(impl_at) = line.find("impl") else {
                continue;
            };
            let rest = &line[impl_at..];
            // Match `impl<...>? (path::)?Sketch for Target`.
            let Some(for_at) = rest.find(" for ") else {
                continue;
            };
            let head = &rest[..for_at];
            if !(head.ends_with("Sketch") || head.ends_with("Sketch ")) {
                continue;
            }
            let head_trim = head.trim_end();
            let trait_name = head_trim
                .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("");
            if trait_name != "Sketch" {
                continue; // DynSketch, etc.
            }
            let target = rest[for_at + 5..]
                .trim()
                .split(['<', ' ', '{'])
                .next()
                .unwrap()
                .to_string();
            if !target.is_empty() {
                out.insert(target);
            }
        }
    }
}

/// Registry completeness: every `Sketch` impl in the three library crates
/// is reachable through some registered family. A new structure that
/// implements `Sketch` without registering fails this test by name.
#[test]
fn every_sketch_impl_in_the_workspace_is_registered() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut impls = BTreeSet::new();
    for krate in ["crates/stream/src", "crates/sketch/src", "crates/core/src"] {
        sketch_impl_targets(&root.join(krate), &mut impls);
    }
    assert!(
        impls.len() >= 30,
        "source scan looks broken: only {} Sketch impls found",
        impls.len()
    );
    let registered: BTreeSet<String> = registry()
        .families()
        .map(|info| {
            info.type_name
                .split('<')
                .next()
                .unwrap()
                .rsplit("::")
                .next()
                .unwrap()
                .to_string()
        })
        .collect();
    let missing: Vec<&String> = impls.difference(&registered).collect();
    assert!(
        missing.is_empty(),
        "Sketch impls not registered in any family: {missing:?}\n\
         (register them in their defining crate's `registry` module)"
    );
}

/// And the converse sanity check: the registry's catalog covers the whole
/// `SketchFamily` enum, so `families()` is the single source of truth.
#[test]
fn registry_covers_the_family_enum() {
    let reg = registry();
    assert_eq!(reg.len(), SketchFamily::ALL.len());
    for &fam in SketchFamily::ALL {
        let info = reg
            .info(fam)
            .unwrap_or_else(|| panic!("{fam} unregistered"));
        assert_eq!(info.family, fam);
        assert!(!info.summary.is_empty() && !info.space.is_empty());
    }
}
