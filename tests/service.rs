//! Snapshot ≡ replay conformance for the `StreamService` epoch-snapshot
//! serving engine.
//!
//! For **every** family whose registry descriptor reports `mergeable` (the
//! suite iterates `registry().families()` — no hand-maintained list), a
//! `StreamService` run over the shared workload must emit, at every epoch
//! cut, a snapshot that agrees with a sequential one-shot `StreamRunner`
//! pass over the same stream *prefix*: bit-for-bit where the family claims
//! `merge_bitwise`, estimate-equal (within the float-association tolerance)
//! otherwise — the `tests/sharded.rs` contract, lifted from one merged pass
//! to a ladder of epoch prefixes (`DESIGN.md §8`). CI re-runs this suite
//! with the `BD_SHARD_THREADS` knob set to 2 and 8 so thread-count-dependent
//! bugs surface there too.

mod common;

use bd_stream::{
    Capabilities, FamilyInfo, RegistryError, ServiceConfig, Snapshot, SpaceInputs, StreamService,
};
use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream};
use std::sync::Arc;

/// The worker counts under test: a fixed sweep plus an optional
/// `BD_SHARD_THREADS` entry (the CI thread-matrix knob).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 3];
    if let Some(extra) = std::env::var("BD_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if extra >= 1 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// Service shape used across the suite: epoch = a third of the stream (so
/// every run cuts ≥ 3 scheduled epochs), fine dispatch chunks (so batches
/// interleave across workers well below epoch granularity).
fn service_config(stream_len: usize, threads: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_epoch((stream_len as u64) / 3)
        .with_threads(threads)
        .with_chunk(512)
}

/// Drive a full service run over the stream: scheduled snapshots plus the
/// final (partial-epoch) cut from `finish`.
fn serve(spec: &SketchSpec, s: &StreamBatch, cfg: ServiceConfig) -> Vec<Arc<Snapshot>> {
    let mut svc = StreamService::start(registry(), spec, cfg)
        .unwrap_or_else(|e| panic!("{}: service failed to start: {e}", spec.family));
    let mut snaps = svc.ingest(&s.updates).unwrap();
    snaps.extend(svc.finish().unwrap());
    snaps
}

/// The acceptance check: snapshot-at-epoch-k ≡ a sequential one-shot run
/// over the same stream prefix, for every mergeable family.
#[test]
fn snapshots_match_sequential_prefix_for_every_mergeable_family() {
    let s = stream(0x5E);
    let mut covered = Vec::new();
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered.push(info.family.name());
        let spec = conformance_spec(info.family);
        for threads in thread_counts() {
            let snaps = serve(&spec, &s, service_config(s.len(), threads));
            assert!(
                snaps.len() >= 3,
                "{}: expected ≥3 epochs, got {}",
                info.family,
                snaps.len()
            );
            for snap in &snaps {
                let prefix = &s.updates[..snap.report.total_updates];
                let mut seq = registry().build(&spec).unwrap();
                StreamRunner::new().run_updates(&mut *seq, prefix);
                assert_probes_match(
                    &format!(
                        "{} (epoch {} of {}, threads = {threads})",
                        info.family,
                        snap.report.epoch,
                        snaps.len()
                    ),
                    &probe(seq.as_ref()),
                    &probe(snap.sketch.as_ref()),
                    info.caps.merge_bitwise,
                );
            }
            let last = snaps.last().unwrap().report;
            assert_eq!(last.total_updates, s.len(), "{}: lost updates", info.family);
            assert_eq!(
                last.total_mass(),
                s.total_mass(),
                "{}: lost mass",
                info.family
            );
        }
    }
    assert!(
        covered.len() >= 20,
        "mergeable catalog shrank unexpectedly: {covered:?}"
    );
}

/// Epoch accounting is monotone and partitions the stream: indices are
/// sequential, per-epoch updates/mass sum to the running totals, and the
/// deletion-fraction / α-floor accounting agrees with exact ground truth.
#[test]
fn multi_epoch_accounting_is_monotone_and_exact() {
    let s = stream(0xAC);
    let truth = FrequencyVector::from_stream(&s);
    let spec = conformance_spec(SketchFamily::Exact);
    let snaps = serve(&spec, &s, service_config(s.len(), 3));
    let mut prev_total = 0usize;
    let (mut sum_updates, mut sum_ins, mut sum_del) = (0usize, 0u64, 0u64);
    for (i, snap) in snaps.iter().enumerate() {
        let rep = snap.report;
        assert_eq!(rep.epoch, i + 1, "epoch indices must be sequential");
        assert!(rep.total_updates > prev_total, "totals must grow");
        prev_total = rep.total_updates;
        sum_updates += rep.updates;
        sum_ins += rep.inserted_mass;
        sum_del += rep.deleted_mass;
        assert_eq!(rep.total_updates, sum_updates, "update totals drifted");
        assert_eq!(rep.total_inserted, sum_ins, "insert totals drifted");
        assert_eq!(rep.total_deleted, sum_del, "delete totals drifted");
        assert!(rep.space_bits() > 0, "missing space watermark");
    }
    let last = snaps.last().unwrap().report;
    let (ins, del): (u64, u64) = s.updates.iter().fold((0, 0), |(i, d), u| {
        if u.delta > 0 {
            (i + u.delta as u64, d)
        } else {
            (i, d + u.delta.unsigned_abs())
        }
    });
    assert_eq!((last.total_inserted, last.total_deleted), (ins, del));
    // The mass-accounting α floor can never exceed the realized α₁ (which
    // divides by the true ‖f‖₁ ≤ net mass), and the workload was generated
    // to satisfy its α promise with slack.
    assert!(last.alpha_observed() <= truth.alpha_l1() + 1e-9);
    assert!(last.deletion_fraction() < 1.0);
}

/// On-demand snapshots anywhere in the stream are safe: they answer for
/// exactly the ingested prefix, and they leave the workers' sketches and
/// the scheduled cuts completely untouched.
#[test]
fn snapshot_while_ingesting_is_safe_and_invisible() {
    let s = stream(0x51);
    for family in [SketchFamily::Csss, SketchFamily::AlphaHh] {
        let spec = conformance_spec(family);
        let cfg = service_config(s.len(), 3);
        let caps = registry().info(family).unwrap().caps;

        // Interleave on-demand snapshots between ingest slices; each must
        // match the sequential prefix, like a scheduled cut.
        let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
        let mut snaps = Vec::new();
        for piece in s.updates.chunks(s.len() / 4 + 1) {
            snaps.extend(svc.ingest(piece).unwrap());
            let mid = svc.snapshot().unwrap();
            let mut seq = registry().build(&spec).unwrap();
            StreamRunner::new().run_updates(&mut *seq, &s.updates[..mid.report.total_updates]);
            assert_probes_match(
                &format!("{family} (on-demand @ {})", mid.report.total_updates),
                &probe(seq.as_ref()),
                &probe(mid.sketch.as_ref()),
                caps.merge_bitwise,
            );
        }
        snaps.extend(svc.finish().unwrap());

        // The scheduled snapshots must be bit-identical to a run that never
        // took an on-demand snapshot (cloning never perturbs the workers).
        let undisturbed = serve(&spec, &s, cfg);
        assert_eq!(snaps.len(), undisturbed.len());
        for (a, b) in snaps.iter().zip(&undisturbed) {
            assert_eq!(a.report.total_updates, b.report.total_updates);
            assert_probes_match(
                &format!("{family} (poked vs undisturbed run)"),
                &probe(b.sketch.as_ref()),
                &probe(a.sketch.as_ref()),
                true,
            );
        }
    }
}

/// Two service runs with the same (spec, stream, config) replay
/// identically — including in the thinning regime, where merging consumes
/// RNG draws — regardless of how the source is sliced into ingest calls.
#[test]
fn service_runs_replay_identically() {
    let s = stream(0xDF);
    let thinned = conformance_spec(SketchFamily::Csss).with_budget(128);
    let exact = conformance_spec(SketchFamily::AlphaL0);
    for spec in [thinned, exact] {
        for threads in thread_counts() {
            let cfg = service_config(s.len(), threads);
            let run = |slice: usize| {
                let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
                let mut snaps = Vec::new();
                for piece in s.updates.chunks(slice) {
                    snaps.extend(svc.ingest(piece).unwrap());
                }
                snaps.extend(svc.finish().unwrap());
                snaps
                    .iter()
                    .flat_map(|sn| probe(sn.sketch.as_ref()))
                    .collect::<Vec<_>>()
            };
            // Different ingest-call shapes must not change the dispatch.
            assert_probes_match(
                &format!("{} (replay, threads = {threads})", spec.family),
                &run(997),
                &run(4096),
                true,
            );
        }
    }
}

/// The iterator and channel drivers are the same engine as slice ingestion.
#[test]
fn iterator_and_channel_sources_match_slices() {
    let s = stream(0x17);
    let spec = conformance_spec(SketchFamily::CountSketch);
    let cfg = service_config(s.len(), 2);
    let baseline: Vec<_> = serve(&spec, &s, cfg)
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();

    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    let mut snaps = svc.run(s.updates.iter().copied()).unwrap();
    snaps.extend(svc.finish().unwrap());
    let from_iter: Vec<_> = snaps
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();
    assert_probes_match("iterator source", &baseline, &from_iter, true);

    let (tx, rx) = std::sync::mpsc::channel();
    for piece in s.updates.chunks(777) {
        tx.send(piece.to_vec()).unwrap();
    }
    drop(tx);
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    let mut snaps = svc.run_channel(rx).unwrap();
    snaps.extend(svc.finish().unwrap());
    let from_chan: Vec<_> = snaps
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();
    assert_probes_match("channel source", &baseline, &from_chan, true);
}

// ---------------------------------------------------------------------------
// Bounded queues and overload behavior (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Tiny bounded `block` queues are invisible: for every mergeable family,
/// a depth-2 service over a bursty time-shaped stream emits snapshots
/// bit-identical to an effectively-unbounded (huge-depth) run — the
/// dispatch sequence is depth-independent, back-pressure only delays it.
#[test]
fn block_policy_matches_unbounded_for_every_mergeable_family() {
    let s = BurstGen::new(1 << 10, 3, 1200, 600).generate_seeded(0xB10C);
    let mut covered = 0;
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered += 1;
        let spec = conformance_spec(info.family);
        let tight = service_config(s.len(), 2).with_depth(2);
        let bounded = serve(&spec, &s, tight);
        let unbounded = serve(&spec, &s, tight.with_depth(1 << 16));
        assert_eq!(
            bounded.len(),
            unbounded.len(),
            "{}: epoch count",
            info.family
        );
        for (b, u) in bounded.iter().zip(&unbounded) {
            assert_eq!(b.report.total_updates, u.report.total_updates);
            assert_eq!(
                b.report.total_dropped_updates, 0,
                "{}: block never sheds",
                info.family
            );
            assert!(
                b.report.queue_peak <= tight.depth * tight.threads,
                "{}: queue peak {} exceeds depth × threads = {}",
                info.family,
                b.report.queue_peak,
                tight.depth * tight.threads
            );
            assert_probes_match(
                &format!("{} (depth 2 vs unbounded)", info.family),
                &probe(u.sketch.as_ref()),
                &probe(b.sketch.as_ref()),
                true,
            );
        }
    }
    assert!(covered >= 20, "mergeable catalog shrank unexpectedly");
}

/// The acceptance-criteria shape: a burst workload through
/// `depth=64,overflow=block` holds the queue-depth watermark within the
/// structural bound `depth × threads` and loses nothing.
#[test]
fn burst_overload_respects_the_depth_bound() {
    let s = BurstGen::new(1 << 12, 4, 4000, 1000).generate_seeded(0xBE);
    let spec = conformance_spec(SketchFamily::CountSketch);
    let cfg = ServiceConfig::default()
        .with_epoch((s.len() as u64) / 4)
        .with_threads(3)
        .with_chunk(128)
        .with_depth(64)
        .with_overflow(OverflowPolicy::Block);
    let snaps = serve(&spec, &s, cfg);
    assert!(snaps.len() >= 4);
    let last = snaps.last().unwrap().report;
    assert_eq!(last.total_updates, s.len());
    assert_eq!(last.total_dropped_updates, 0);
    for snap in &snaps {
        assert!(
            snap.report.queue_peak <= cfg.depth * cfg.threads,
            "queue peak {} exceeds cap {}",
            snap.report.queue_peak,
            cfg.depth * cfg.threads
        );
    }
}

/// A deliberately slow test double: an exact vector whose batched ingest
/// sleeps, so a tiny `drop`-policy queue is guaranteed to overflow.
#[derive(Clone)]
struct SlowSketch(FrequencyVector);

impl SpaceUsage for SlowSketch {
    fn space(&self) -> SpaceReport {
        self.0.space()
    }
}

impl Sketch for SlowSketch {
    fn update(&mut self, item: Item, delta: i64) {
        Sketch::update(&mut self.0, item, delta);
    }
    fn update_batch(&mut self, batch: &[Update]) {
        std::thread::sleep(std::time::Duration::from_micros(1500));
        Sketch::update_batch(&mut self.0, batch);
    }
}

impl PointQuery for SlowSketch {
    fn point(&self, item: Item) -> f64 {
        self.0.point(item)
    }
}

impl Mergeable for SlowSketch {
    fn merge_from(&mut self, other: &Self) {
        self.0.merge_from(&other.0);
    }
}

bd_stream::impl_dyn_sketch!(SlowSketch, point, merge);

/// A fresh registry serving [`SlowSketch`] under the `exact` family name.
fn slow_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(
        FamilyInfo {
            family: SketchFamily::Exact,
            summary: "deliberately slow exact vector (overload test double)",
            caps: Capabilities {
                point: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                ..Default::default()
            },
            space: "O(n)",
            type_name: std::any::type_name::<SlowSketch>(),
        },
        |spec| Box::new(SlowSketch(FrequencyVector::new(spec.n))),
    );
    reg
}

/// Drop-policy accounting is exact: what the service answered for is
/// exactly what it ingested, and offered = ingested + dropped at every
/// granularity (per epoch, in the running totals, and in update mass).
#[test]
fn drop_policy_accounting_reconciles_exactly() {
    let s = stream(0xD0);
    let reg = slow_registry();
    let spec = SketchSpec::new(SketchFamily::Exact)
        .with_n(1 << 10)
        .with_alpha(3.0);
    let cfg = ServiceConfig::default()
        .with_epoch(512)
        .with_threads(2)
        .with_chunk(64)
        .with_depth(1)
        .with_overflow(OverflowPolicy::Drop);
    let mut svc = StreamService::start(&reg, &spec, cfg).unwrap();
    let mut snaps = svc.ingest(&s.updates).unwrap();
    snaps.extend(svc.finish().unwrap());

    let last = snaps.last().unwrap().report;
    assert!(
        last.total_dropped_updates > 0,
        "queue never overflowed — the slow sketch is not slow enough"
    );
    // Offered = ingested + dropped, in updates and in mass.
    assert_eq!(last.total_updates + last.total_dropped_updates, s.len());
    assert_eq!(last.total_offered_updates(), s.len());
    assert_eq!(last.total_mass() + last.total_dropped_mass, s.total_mass());

    // The same reconciliation holds per epoch, and every scheduled epoch
    // is cut at exactly `epoch` offered updates.
    let (mut sum_ing, mut sum_drop) = (0usize, 0usize);
    for (i, snap) in snaps.iter().enumerate() {
        let rep = snap.report;
        sum_ing += rep.updates;
        sum_drop += rep.dropped_updates;
        if i + 1 < snaps.len() {
            assert_eq!(
                rep.offered_updates(),
                512,
                "epoch geometry must count offered"
            );
        }
    }
    assert_eq!(sum_ing, last.total_updates);
    assert_eq!(sum_drop, last.total_dropped_updates);

    // The sketch state agrees with the ingest counters: the exact vector's
    // net mass is exactly inserted − deleted over delivered updates.
    let p = snaps
        .last()
        .unwrap()
        .sketch
        .as_point()
        .expect("SlowSketch answers point queries");
    let net: f64 = (0..1 << 10).map(|i| p.point(i)).sum();
    assert_eq!(
        net as i64,
        last.total_inserted as i64 - last.total_deleted as i64
    );
}

/// Item that [`PanickySketch`] refuses to ingest, killing its worker.
const POISON: u64 = 0xDEAD;

/// A test double whose worker dies mid-stream: ingesting the poison item
/// panics the worker thread, which must surface as a typed
/// [`ServiceError::WorkerDied`] — not a dispatcher panic.
#[derive(Clone)]
struct PanickySketch(FrequencyVector);

impl SpaceUsage for PanickySketch {
    fn space(&self) -> SpaceReport {
        self.0.space()
    }
}

impl Sketch for PanickySketch {
    fn update(&mut self, item: Item, delta: i64) {
        assert_ne!(item, POISON, "poison pill ingested");
        Sketch::update(&mut self.0, item, delta);
    }
}

impl PointQuery for PanickySketch {
    fn point(&self, item: Item) -> f64 {
        self.0.point(item)
    }
}

impl Mergeable for PanickySketch {
    fn merge_from(&mut self, other: &Self) {
        self.0.merge_from(&other.0);
    }
}

bd_stream::impl_dyn_sketch!(PanickySketch, point, merge);

fn panicky_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(
        FamilyInfo {
            family: SketchFamily::Exact,
            summary: "panics on the poison item (worker-death test double)",
            caps: Capabilities {
                point: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                ..Default::default()
            },
            inputs: SpaceInputs {
                n: true,
                ..Default::default()
            },
            space: "O(n)",
            type_name: std::any::type_name::<PanickySketch>(),
        },
        |spec| Box::new(PanickySketch(FrequencyVector::new(spec.n))),
    );
    reg
}

/// A worker death is a typed, attributed error — and the service stays
/// safe to poke and to drop afterwards. Regression for the old
/// `.expect("service worker hung up")` dispatcher panic.
#[test]
fn worker_death_is_a_typed_error_not_a_panic() {
    let reg = panicky_registry();
    let spec = SketchSpec::new(SketchFamily::Exact).with_n(1 << 10);
    let cfg = ServiceConfig::default()
        .with_epoch(1 << 20)
        .with_threads(2)
        .with_chunk(32)
        .with_depth(4);
    let mut svc = StreamService::start(&reg, &spec, cfg).unwrap();

    // The poison lands in the first dispatch cell → worker 0 dies. The
    // dispatcher notices on a later send; keep feeding (bounded by a
    // deadline) until the typed error surfaces.
    let mut batch = vec![Update::insert(1, 1); cfg.chunk];
    batch[0] = Update::insert(POISON, 1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let died = loop {
        match svc.ingest(&batch) {
            Ok(_) => {
                batch.fill(Update::insert(1, 1)); // only poison once
                assert!(
                    std::time::Instant::now() < deadline,
                    "worker death never surfaced as an error"
                );
            }
            Err(e) => break e,
        }
    };
    assert_eq!(died, ServiceError::WorkerDied { worker: 0 });

    // A poisoned service keeps failing loudly instead of panicking…
    assert!(svc.snapshot().is_err());
    assert!(svc.finish().is_err());

    // …and one dropped without `finish` shuts down cleanly.
    let mut svc2 = StreamService::start(&reg, &spec, cfg).unwrap();
    let mut poison = vec![Update::insert(1, 1); cfg.chunk];
    poison[0] = Update::insert(POISON, 1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while svc2.ingest(&poison).is_ok() {
        poison.fill(Update::insert(1, 1));
        if std::time::Instant::now() >= deadline {
            break;
        }
    }
    drop(svc2);
}

/// Multi-worker services on non-mergeable families are rejected up front;
/// a single worker serves any family.
#[test]
fn non_mergeable_families_error_beyond_one_worker() {
    let s = stream(0x92);
    let mut rejected = 0;
    for info in registry().families() {
        if info.caps.mergeable {
            continue;
        }
        rejected += 1;
        let spec = conformance_spec(info.family);
        assert!(
            matches!(
                StreamService::start(registry(), &spec, service_config(s.len(), 4)),
                Err(RegistryError::NotMergeable)
            ),
            "{}: expected NotMergeable",
            info.family
        );
        let snaps = serve(&spec, &s, service_config(s.len(), 1));
        assert!(
            snaps.len() >= 3,
            "{}: single-worker service failed",
            info.family
        );
    }
    assert!(rejected > 0, "no non-mergeable families left to reject?");
}
