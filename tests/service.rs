//! Snapshot ≡ replay conformance for the `StreamService` epoch-snapshot
//! serving engine.
//!
//! For **every** family whose registry descriptor reports `mergeable` (the
//! suite iterates `registry().families()` — no hand-maintained list), a
//! `StreamService` run over the shared workload must emit, at every epoch
//! cut, a snapshot that agrees with a sequential one-shot `StreamRunner`
//! pass over the same stream *prefix*: bit-for-bit where the family claims
//! `merge_bitwise`, estimate-equal (within the float-association tolerance)
//! otherwise — the `tests/sharded.rs` contract, lifted from one merged pass
//! to a ladder of epoch prefixes (`DESIGN.md §8`). CI re-runs this suite
//! with the `BD_SHARD_THREADS` knob set to 2 and 8 so thread-count-dependent
//! bugs surface there too.

mod common;

use bd_stream::{RegistryError, ServiceConfig, Snapshot, StreamService};
use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream};
use std::sync::Arc;

/// The worker counts under test: a fixed sweep plus an optional
/// `BD_SHARD_THREADS` entry (the CI thread-matrix knob).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 3];
    if let Some(extra) = std::env::var("BD_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if extra >= 1 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// Service shape used across the suite: epoch = a third of the stream (so
/// every run cuts ≥ 3 scheduled epochs), fine dispatch chunks (so batches
/// interleave across workers well below epoch granularity).
fn service_config(stream_len: usize, threads: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_epoch((stream_len as u64) / 3)
        .with_threads(threads)
        .with_chunk(512)
}

/// Drive a full service run over the stream: scheduled snapshots plus the
/// final (partial-epoch) cut from `finish`.
fn serve(spec: &SketchSpec, s: &StreamBatch, cfg: ServiceConfig) -> Vec<Arc<Snapshot>> {
    let mut svc = StreamService::start(registry(), spec, cfg)
        .unwrap_or_else(|e| panic!("{}: service failed to start: {e}", spec.family));
    let mut snaps = svc.ingest(&s.updates);
    snaps.extend(svc.finish());
    snaps
}

/// The acceptance check: snapshot-at-epoch-k ≡ a sequential one-shot run
/// over the same stream prefix, for every mergeable family.
#[test]
fn snapshots_match_sequential_prefix_for_every_mergeable_family() {
    let s = stream(0x5E);
    let mut covered = Vec::new();
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered.push(info.family.name());
        let spec = conformance_spec(info.family);
        for threads in thread_counts() {
            let snaps = serve(&spec, &s, service_config(s.len(), threads));
            assert!(
                snaps.len() >= 3,
                "{}: expected ≥3 epochs, got {}",
                info.family,
                snaps.len()
            );
            for snap in &snaps {
                let prefix = &s.updates[..snap.report.total_updates];
                let mut seq = registry().build(&spec).unwrap();
                StreamRunner::new().run_updates(&mut *seq, prefix);
                assert_probes_match(
                    &format!(
                        "{} (epoch {} of {}, threads = {threads})",
                        info.family,
                        snap.report.epoch,
                        snaps.len()
                    ),
                    &probe(seq.as_ref()),
                    &probe(snap.sketch.as_ref()),
                    info.caps.merge_bitwise,
                );
            }
            let last = snaps.last().unwrap().report;
            assert_eq!(last.total_updates, s.len(), "{}: lost updates", info.family);
            assert_eq!(
                last.total_mass(),
                s.total_mass(),
                "{}: lost mass",
                info.family
            );
        }
    }
    assert!(
        covered.len() >= 20,
        "mergeable catalog shrank unexpectedly: {covered:?}"
    );
}

/// Epoch accounting is monotone and partitions the stream: indices are
/// sequential, per-epoch updates/mass sum to the running totals, and the
/// deletion-fraction / α-floor accounting agrees with exact ground truth.
#[test]
fn multi_epoch_accounting_is_monotone_and_exact() {
    let s = stream(0xAC);
    let truth = FrequencyVector::from_stream(&s);
    let spec = conformance_spec(SketchFamily::Exact);
    let snaps = serve(&spec, &s, service_config(s.len(), 3));
    let mut prev_total = 0usize;
    let (mut sum_updates, mut sum_ins, mut sum_del) = (0usize, 0u64, 0u64);
    for (i, snap) in snaps.iter().enumerate() {
        let rep = snap.report;
        assert_eq!(rep.epoch, i + 1, "epoch indices must be sequential");
        assert!(rep.total_updates > prev_total, "totals must grow");
        prev_total = rep.total_updates;
        sum_updates += rep.updates;
        sum_ins += rep.inserted_mass;
        sum_del += rep.deleted_mass;
        assert_eq!(rep.total_updates, sum_updates, "update totals drifted");
        assert_eq!(rep.total_inserted, sum_ins, "insert totals drifted");
        assert_eq!(rep.total_deleted, sum_del, "delete totals drifted");
        assert!(rep.space_bits() > 0, "missing space watermark");
    }
    let last = snaps.last().unwrap().report;
    let (ins, del): (u64, u64) = s.updates.iter().fold((0, 0), |(i, d), u| {
        if u.delta > 0 {
            (i + u.delta as u64, d)
        } else {
            (i, d + u.delta.unsigned_abs())
        }
    });
    assert_eq!((last.total_inserted, last.total_deleted), (ins, del));
    // The mass-accounting α floor can never exceed the realized α₁ (which
    // divides by the true ‖f‖₁ ≤ net mass), and the workload was generated
    // to satisfy its α promise with slack.
    assert!(last.alpha_observed() <= truth.alpha_l1() + 1e-9);
    assert!(last.deletion_fraction() < 1.0);
}

/// On-demand snapshots anywhere in the stream are safe: they answer for
/// exactly the ingested prefix, and they leave the workers' sketches and
/// the scheduled cuts completely untouched.
#[test]
fn snapshot_while_ingesting_is_safe_and_invisible() {
    let s = stream(0x51);
    for family in [SketchFamily::Csss, SketchFamily::AlphaHh] {
        let spec = conformance_spec(family);
        let cfg = service_config(s.len(), 3);
        let caps = registry().info(family).unwrap().caps;

        // Interleave on-demand snapshots between ingest slices; each must
        // match the sequential prefix, like a scheduled cut.
        let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
        let mut snaps = Vec::new();
        for piece in s.updates.chunks(s.len() / 4 + 1) {
            snaps.extend(svc.ingest(piece));
            let mid = svc.snapshot();
            let mut seq = registry().build(&spec).unwrap();
            StreamRunner::new().run_updates(&mut *seq, &s.updates[..mid.report.total_updates]);
            assert_probes_match(
                &format!("{family} (on-demand @ {})", mid.report.total_updates),
                &probe(seq.as_ref()),
                &probe(mid.sketch.as_ref()),
                caps.merge_bitwise,
            );
        }
        snaps.extend(svc.finish());

        // The scheduled snapshots must be bit-identical to a run that never
        // took an on-demand snapshot (cloning never perturbs the workers).
        let undisturbed = serve(&spec, &s, cfg);
        assert_eq!(snaps.len(), undisturbed.len());
        for (a, b) in snaps.iter().zip(&undisturbed) {
            assert_eq!(a.report.total_updates, b.report.total_updates);
            assert_probes_match(
                &format!("{family} (poked vs undisturbed run)"),
                &probe(b.sketch.as_ref()),
                &probe(a.sketch.as_ref()),
                true,
            );
        }
    }
}

/// Two service runs with the same (spec, stream, config) replay
/// identically — including in the thinning regime, where merging consumes
/// RNG draws — regardless of how the source is sliced into ingest calls.
#[test]
fn service_runs_replay_identically() {
    let s = stream(0xDF);
    let thinned = conformance_spec(SketchFamily::Csss).with_budget(128);
    let exact = conformance_spec(SketchFamily::AlphaL0);
    for spec in [thinned, exact] {
        for threads in thread_counts() {
            let cfg = service_config(s.len(), threads);
            let run = |slice: usize| {
                let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
                let mut snaps = Vec::new();
                for piece in s.updates.chunks(slice) {
                    snaps.extend(svc.ingest(piece));
                }
                snaps.extend(svc.finish());
                snaps
                    .iter()
                    .flat_map(|sn| probe(sn.sketch.as_ref()))
                    .collect::<Vec<_>>()
            };
            // Different ingest-call shapes must not change the dispatch.
            assert_probes_match(
                &format!("{} (replay, threads = {threads})", spec.family),
                &run(997),
                &run(4096),
                true,
            );
        }
    }
}

/// The iterator and channel drivers are the same engine as slice ingestion.
#[test]
fn iterator_and_channel_sources_match_slices() {
    let s = stream(0x17);
    let spec = conformance_spec(SketchFamily::CountSketch);
    let cfg = service_config(s.len(), 2);
    let baseline: Vec<_> = serve(&spec, &s, cfg)
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();

    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    let mut snaps = svc.run(s.updates.iter().copied());
    snaps.extend(svc.finish());
    let from_iter: Vec<_> = snaps
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();
    assert_probes_match("iterator source", &baseline, &from_iter, true);

    let (tx, rx) = std::sync::mpsc::channel();
    for piece in s.updates.chunks(777) {
        tx.send(piece.to_vec()).unwrap();
    }
    drop(tx);
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    let mut snaps = svc.run_channel(rx);
    snaps.extend(svc.finish());
    let from_chan: Vec<_> = snaps
        .iter()
        .flat_map(|sn| probe(sn.sketch.as_ref()))
        .collect();
    assert_probes_match("channel source", &baseline, &from_chan, true);
}

/// Multi-worker services on non-mergeable families are rejected up front;
/// a single worker serves any family.
#[test]
fn non_mergeable_families_error_beyond_one_worker() {
    let s = stream(0x92);
    let mut rejected = 0;
    for info in registry().families() {
        if info.caps.mergeable {
            continue;
        }
        rejected += 1;
        let spec = conformance_spec(info.family);
        assert!(
            matches!(
                StreamService::start(registry(), &spec, service_config(s.len(), 4)),
                Err(RegistryError::NotMergeable)
            ),
            "{}: expected NotMergeable",
            info.family
        );
        let snaps = serve(&spec, &s, service_config(s.len(), 1));
        assert!(
            snaps.len() >= 3,
            "{}: single-worker service failed",
            info.family
        );
    }
    assert!(rejected > 0, "no non-mergeable families left to reject?");
}
