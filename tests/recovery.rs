//! Crash-recovery conformance for snapshot persistence: the tentpole law
//! **persist → restart → replay-tail ≡ uninterrupted**.
//!
//! A `StreamService` with a `SnapshotStore` attached writes every scheduled
//! epoch cut durably to disk. These suites kill the service mid-epoch — by
//! dropping it without `finish` and by panicking a worker with a poison
//! test double — then cold-start a second service from the store
//! (`StreamService::recover`), replay only the stream tail after the
//! recovered snapshot's offered-stream stamp, and pin the continuation
//! against an uninterrupted run over the same stream: bit-identical where
//! the family claims `merge_bitwise`, estimate-equal otherwise — the same
//! per-family contract as `tests/service.rs`, extended across a restart
//! (`DESIGN.md §13`). Like the other registry-driven suites, the family
//! loop iterates `registry().families()` with no hand-maintained list, and
//! CI re-runs it under the `BD_SHARD_THREADS` matrix.
//!
//! The laws hold under the `block` overflow policy (deterministic
//! dispatch). Under `drop`, shed cells are timing-dependent, so recovery
//! preserves exact *accounting* but not bit-identical state — documented
//! in `DESIGN.md §13` and deliberately not pinned here.

mod common;

use bd_stream::{
    Capabilities, FamilyInfo, PersistError, Registry, ServiceConfig, ServiceError, SnapshotStore,
    StreamService,
};
use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream};
use std::time::{Duration, Instant};

/// The worker counts under test: a fixed sweep plus an optional
/// `BD_SHARD_THREADS` entry (the CI thread-matrix knob).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 3];
    if let Some(extra) = std::env::var("BD_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if extra >= 1 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// Service shape shared with `tests/service.rs`: epoch = a third of the
/// stream, fine dispatch chunks.
fn service_config(stream_len: usize, threads: usize) -> ServiceConfig {
    ServiceConfig::default()
        .with_epoch((stream_len as u64) / 3)
        .with_threads(threads)
        .with_chunk(512)
}

/// A self-cleaning snapshot directory under the OS temp dir.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bd-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn store(&self) -> SnapshotStore {
        SnapshotStore::open(&self.0).unwrap()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The acceptance law: for every mergeable family, run-to-epoch-k →
/// crash mid-epoch → recover → replay tail produces, at every subsequent
/// epoch, the same snapshot the uninterrupted run produced.
#[test]
fn recovery_matches_uninterrupted_for_every_mergeable_family() {
    let s = stream(0x7C);
    // Past the first epoch cut (len/3), short of the second (2·len/3):
    // the crash loses a partially-ingested epoch, the recovery replays it.
    let stop = s.len() * 5 / 9;
    let mut covered = Vec::new();
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered.push(info.family.name());
        let spec = conformance_spec(info.family);
        for threads in thread_counts() {
            let cfg = service_config(s.len(), threads);
            let name = format!("{} (threads = {threads})", info.family);

            // The uninterrupted reference run.
            let mut un = StreamService::start(registry(), &spec, cfg).unwrap();
            let mut want = un.ingest(&s.updates).unwrap();
            want.extend(un.finish().unwrap());

            // The interrupted run: persist scheduled cuts, then crash
            // mid-epoch (dropped without `finish` — the partial epoch and
            // everything in the worker queues is lost).
            let dir = TempDir::new(&format!("{}-{threads}", info.family.name()));
            let mut first = StreamService::start(registry(), &spec, cfg).unwrap();
            first.persist_to(dir.store()).unwrap();
            first.ingest(&s.updates[..stop]).unwrap();
            drop(first);

            // Cold-start from disk and replay only the tail.
            let mut rec = StreamService::recover(registry(), &spec, cfg, dir.store())
                .unwrap_or_else(|e| panic!("{name}: recovery failed: {e}"));
            let from = rec.replay_from();
            assert_eq!(
                from, cfg.epoch as usize,
                "{name}: recovery must resume at the last persisted epoch boundary"
            );
            assert!(
                rec.latest().is_some(),
                "{name}: the recovered snapshot must be served immediately"
            );
            assert_eq!(rec.epochs_cut(), 1, "{name}: epoch counter not restored");
            let mut got = rec.ingest(&s.updates[from..]).unwrap();
            got.extend(rec.finish().unwrap());
            assert!(
                got.len() >= 2,
                "{name}: expected ≥2 post-recovery epochs, got {}",
                got.len()
            );

            // Every post-recovery snapshot ≡ the uninterrupted run's
            // snapshot of the same epoch.
            for g in &got {
                let w = want
                    .iter()
                    .find(|w| w.report.epoch == g.report.epoch)
                    .unwrap_or_else(|| panic!("{name}: unmatched epoch {}", g.report.epoch));
                assert_eq!(g.report.total_updates, w.report.total_updates, "{name}");
                assert_eq!(g.report.total_inserted, w.report.total_inserted, "{name}");
                assert_eq!(g.report.total_deleted, w.report.total_deleted, "{name}");
                assert_probes_match(
                    &format!("{name} (epoch {})", g.report.epoch),
                    &probe(w.sketch.as_ref()),
                    &probe(g.sketch.as_ref()),
                    info.caps.merge_bitwise,
                );
            }
            let last = got.last().unwrap().report;
            assert_eq!(last.total_updates, s.len(), "{name}: lost updates");
            assert_eq!(last.total_mass(), s.total_mass(), "{name}: lost mass");
            assert_eq!(last.epoch, want.last().unwrap().report.epoch, "{name}");
        }
    }
    assert!(
        covered.len() >= 20,
        "mergeable catalog shrank unexpectedly: {covered:?}"
    );
}

/// Recovery falls back across torn/corrupt files: flipping a bit in the
/// newest snapshot makes `recover` resume from the previous epoch, and it
/// still reaches the same final state after replaying the (longer) tail.
#[test]
fn recovery_falls_back_past_a_corrupt_newest_snapshot() {
    let s = stream(0x7C);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = service_config(s.len(), 3);
    let dir = TempDir::new("fallback");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates[..s.len() * 7 / 9]).unwrap(); // epochs 1 and 2 persisted
    drop(svc);

    // A torn final write: corrupt epoch 2's file in place.
    let store = dir.store();
    let newest = store.path_for(2);
    let mut raw = std::fs::read(&newest).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&newest, &raw).unwrap();

    let mut rec = StreamService::recover(registry(), &spec, cfg, store).unwrap();
    assert_eq!(rec.epochs_cut(), 1, "must fall back to epoch 1");
    assert_eq!(rec.replay_from(), cfg.epoch as usize);
    let mut snaps = rec.ingest(&s.updates[rec.replay_from()..]).unwrap();
    snaps.extend(rec.finish().unwrap());
    let mut seq = registry().build(&spec).unwrap();
    seq.update_batch(&s.updates);
    assert_probes_match(
        "fallback final snapshot",
        &probe(seq.as_ref()),
        &probe(snaps.last().unwrap().sketch.as_ref()),
        true,
    );
}

/// Wrong-seed, wrong-shape, and wrong-geometry recovery attempts are all
/// typed errors — the stamps, not the caller, are the source of truth.
#[test]
fn recovery_rejects_mismatched_stamps_with_typed_errors() {
    let s = stream(0x31);
    let spec = conformance_spec(SketchFamily::CountSketch);
    let cfg = service_config(s.len(), 3);
    let dir = TempDir::new("stamps");
    let mut svc = StreamService::start(registry(), &spec, cfg).unwrap();
    svc.persist_to(dir.store()).unwrap();
    svc.ingest(&s.updates).unwrap();
    svc.finish().unwrap();

    // Wrong seed: the spec string embeds the seed, so this is a spec
    // mismatch — the snapshot's hash functions would not be the caller's.
    let wrong_seed = spec.with_seed(spec.seed ^ 1);
    assert!(matches!(
        StreamService::recover(registry(), &wrong_seed, cfg, dir.store()),
        Err(ServiceError::Persist(PersistError::SpecMismatch { .. }))
    ));
    // Wrong shape (different ε ⇒ different table geometry).
    let wrong_shape = spec.with_epsilon(0.11);
    assert!(matches!(
        StreamService::recover(registry(), &wrong_shape, cfg, dir.store()),
        Err(ServiceError::Persist(PersistError::SpecMismatch { .. }))
    ));
    // Wrong dispatch geometry: replay would interleave differently.
    let wrong_cfg = cfg.with_chunk(cfg.chunk * 2);
    assert!(matches!(
        StreamService::recover(registry(), &spec, wrong_cfg, dir.store()),
        Err(ServiceError::Persist(PersistError::ConfigMismatch { .. }))
    ));
    // The true stamps still recover.
    let rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert!(rec.replay_from() > 0);
}

/// An empty store is a fresh start, not an error — and the service then
/// persists into it, so the *next* recovery finds snapshots.
#[test]
fn empty_store_recovers_to_a_fresh_start() {
    let s = stream(0x44);
    let spec = conformance_spec(SketchFamily::Exact);
    let cfg = service_config(s.len(), 1);
    let dir = TempDir::new("empty");
    let mut svc = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert_eq!(svc.replay_from(), 0);
    assert_eq!(svc.epochs_cut(), 0);
    svc.ingest(&s.updates).unwrap();
    svc.finish().unwrap();
    let rec = StreamService::recover(registry(), &spec, cfg, dir.store()).unwrap();
    assert!(rec.replay_from() > 0, "second boot must find the snapshots");
}

/// Item that [`PanickySketch`] refuses to ingest, killing its worker.
const POISON: u64 = 0xDEAD;

/// A persistable test double whose worker dies mid-stream: the crash is a
/// *panic inside a worker thread*, not a clean drop — the closest
/// in-process stand-in for a real kill.
#[derive(Clone)]
struct PanickySketch(FrequencyVector);

impl SpaceUsage for PanickySketch {
    fn space(&self) -> SpaceReport {
        self.0.space()
    }
}

impl Sketch for PanickySketch {
    fn update(&mut self, item: Item, delta: i64) {
        assert_ne!(item, POISON, "poison pill ingested");
        Sketch::update(&mut self.0, item, delta);
    }
}

impl PointQuery for PanickySketch {
    fn point(&self, item: Item) -> f64 {
        self.0.point(item)
    }
}

impl Mergeable for PanickySketch {
    fn merge_from(&mut self, other: &Self) {
        self.0.merge_from(&other.0);
    }
}

impl SketchState for PanickySketch {
    fn save_state(&self, w: &mut StateWriter) {
        self.0.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.0.load_state(r)
    }
}

bd_stream::impl_dyn_sketch!(PanickySketch, point, merge, persist);

fn panicky_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(
        FamilyInfo {
            family: SketchFamily::Exact,
            summary: "panics on the poison item (crash-recovery test double)",
            caps: Capabilities {
                point: true,
                mergeable: true,
                merge_bitwise: true,
                batch_bitwise: true,
                linear: true,
                persist: true,
                ..Default::default()
            },
            inputs: bd_stream::SpaceInputs {
                n: true,
                ..Default::default()
            },
            space: "O(n)",
            type_name: std::any::type_name::<PanickySketch>(),
        },
        |spec| Box::new(PanickySketch(FrequencyVector::new(spec.n))),
    );
    reg
}

/// Crash injection via a panicking worker: epochs persisted before the
/// panic survive, the poisoned partial epoch does not, and a recovered
/// service replaying the intended tail ends bit-identical to a sequential
/// run of the whole intended stream.
#[test]
fn panicking_worker_crash_recovers_from_disk() {
    let reg = panicky_registry();
    let spec = SketchSpec::new(SketchFamily::Exact)
        .with_n(1 << 10)
        .with_seed(9);
    let cfg = ServiceConfig::default()
        .with_epoch(200)
        .with_threads(3)
        .with_chunk(32)
        .with_depth(4);
    let intended: Vec<Update> = (0..1000u64)
        .map(|t| Update::new(t % 97, if t % 5 == 0 { -1 } else { 2 }))
        .collect();

    let dir = TempDir::new("panic");
    let mut svc = StreamService::recover(&reg, &spec, cfg, dir.store()).unwrap();
    // Three clean epochs persisted (200 each), 100 updates in flight.
    svc.ingest(&intended[..700]).unwrap();

    // The worker owning the next dispatch cell swallows the poison and
    // panics; the dispatcher surfaces it as the typed error on a later
    // send. Nothing poisoned is ever persisted — the snapshot command
    // behind the poison batch is never answered.
    let mut batch = vec![Update::insert(1, 1); cfg.chunk];
    batch[0] = Update::insert(POISON, 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let died = loop {
        match svc.ingest(&batch) {
            Ok(_) => {
                batch.fill(Update::insert(1, 1)); // only poison once
                assert!(
                    Instant::now() < deadline,
                    "worker death never surfaced as an error"
                );
            }
            Err(e) => break e,
        }
    };
    assert!(matches!(died, ServiceError::WorkerDied { .. }));
    drop(svc);

    // Recovery resumes at the last *clean* epoch boundary…
    let mut rec = StreamService::recover(&reg, &spec, cfg, dir.store()).unwrap();
    assert_eq!(rec.replay_from(), 600);
    assert_eq!(rec.epochs_cut(), 3);
    // …and replaying the intended tail reaches the intended final state.
    let mut snaps = rec.ingest(&intended[600..]).unwrap();
    snaps.extend(rec.finish().unwrap());
    let last = snaps.last().unwrap();
    assert_eq!(last.report.total_updates, intended.len());
    let mut seq = reg.build(&spec).unwrap();
    seq.update_batch(&intended);
    assert_probes_match(
        "post-panic recovery",
        &probe(seq.as_ref()),
        &probe(last.sketch.as_ref()),
        true,
    );
}
