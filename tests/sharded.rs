//! Shard ≡ sequential conformance for the `ShardedRunner` parallel
//! ingestion engine.
//!
//! For **every** family whose registry descriptor reports `mergeable` (the
//! suite iterates `registry().families()` — no hand-maintained list), a
//! `ShardedRunner` pass at k ∈ {1, 2, 4, 7} shards over a mixed
//! insert/delete workload must agree with the sequential `StreamRunner`:
//! bit-for-bit where the family claims `merge_bitwise`, estimate-equal
//! (within the float-association tolerance) otherwise — the contract
//! `DESIGN.md §7` documents. CI re-runs this suite with the
//! `BD_SHARD_THREADS` knob set to 2 and 8 so thread-count-dependent bugs
//! surface there too.

mod common;

use bd_stream::{merge_tree, RegistryError, ShardedRunner};
use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream};

/// The shard counts under test: the fixed {1, 2, 4, 7} sweep plus an
/// optional `BD_SHARD_THREADS` entry (the CI thread-matrix knob).
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 7];
    if let Some(extra) = std::env::var("BD_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if extra >= 1 && !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// The shard count a `ShardedRunner::new(threads)` pass actually uses:
/// updates are cut into ⌈len/workers⌉-sized chunks, and the chunk count can
/// undershoot the worker cap (5 updates across 4 workers ⇒ 3 chunks).
fn expected_shards(len: usize, threads: usize) -> usize {
    let per = len.div_ceil(threads.min(len).max(1)).max(1);
    len.div_ceil(per).max(1)
}

/// The acceptance check: shard(k) ≡ sequential for every mergeable family.
#[test]
fn sharded_matches_sequential_for_every_mergeable_family() {
    let s = stream(0x5A);
    let mut covered = Vec::new();
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        covered.push(info.family.name());
        let spec = conformance_spec(info.family);
        let mut seq = registry().build(&spec).unwrap();
        StreamRunner::new().run(&mut *seq, &s);
        let want = probe(seq.as_ref());
        for k in shard_counts() {
            let run = ShardedRunner::new(k)
                .run(registry(), &spec, &s)
                .unwrap_or_else(|e| panic!("{}: sharded run failed: {e}", info.family));
            assert_eq!(run.shard_count(), expected_shards(s.len(), k));
            assert_probes_match(
                &format!("{} (shards = {k})", info.family),
                &want,
                &probe(run.sketch.as_ref()),
                info.caps.merge_bitwise,
            );
            let report = run.report();
            assert_eq!(report.updates, s.len(), "{}: lost updates", info.family);
            assert_eq!(report.mass, s.total_mass(), "{}: lost mass", info.family);
        }
    }
    assert!(
        covered.len() >= 20,
        "mergeable catalog shrank unexpectedly: {covered:?}"
    );
}

/// One shard is a plain sequential pass and must be valid (and bit-exact)
/// for every family, mergeable or not.
#[test]
fn single_shard_matches_sequential_for_every_family() {
    let s = stream(0x15);
    for info in registry().families() {
        let spec = conformance_spec(info.family);
        let mut seq = registry().build(&spec).unwrap();
        StreamRunner::new().run(&mut *seq, &s);
        let run = ShardedRunner::new(1)
            .run(registry(), &spec, &s)
            .unwrap_or_else(|e| panic!("{}: single-shard run failed: {e}", info.family));
        assert_probes_match(
            &format!("{} (single shard)", info.family),
            &probe(seq.as_ref()),
            &probe(run.sketch.as_ref()),
            true,
        );
    }
}

/// Two sharded runs with the same seed and thread count replay identically —
/// including in the *thinning* regime, where merging consumes RNG draws.
#[test]
fn sharded_runs_replay_identically() {
    let s = stream(0xDE);
    let thinned = [
        conformance_spec(SketchFamily::Csss).with_budget(128),
        conformance_spec(SketchFamily::SampledVector).with_budget(128),
    ];
    let exact_regime = [
        conformance_spec(SketchFamily::AlphaHh),
        conformance_spec(SketchFamily::AlphaL0),
    ];
    for spec in thinned.iter().chain(&exact_regime) {
        for k in [2, 4, 7] {
            let run_once = || {
                let run = ShardedRunner::new(k).run(registry(), spec, &s).unwrap();
                probe(run.sketch.as_ref())
            };
            assert_probes_match(
                &format!("{} (determinism, shards = {k})", spec.family),
                &run_once(),
                &run_once(),
                true,
            );
        }
    }
}

/// The tree fold both engines now use must agree with the serial
/// left-to-right `merge_dyn` fold it replaced, for **every** mergeable
/// family — bit-for-bit where the family claims `merge_bitwise`,
/// estimate-equal otherwise — at fan-ins covering balanced trees, odd
/// survivors, and the inline single-pair case.
#[test]
fn tree_fold_matches_serial_fold_for_every_mergeable_family() {
    let s = stream(0x7E);
    for info in registry().families() {
        if !info.caps.mergeable {
            continue;
        }
        let spec = conformance_spec(info.family);
        for n in [2usize, 3, 5, 8] {
            let build_parts = || {
                let mut parts = registry().build_n(&spec, n).unwrap();
                let per = s.len().div_ceil(n);
                for (part, chunk) in parts.iter_mut().zip(s.updates.chunks(per)) {
                    StreamRunner::new().run_updates(&mut **part, chunk);
                }
                parts
            };
            let mut serial = build_parts();
            let mut acc = serial.remove(0);
            for part in &serial {
                acc.merge_dyn(part.as_ref())
                    .unwrap_or_else(|e| panic!("{}: serial merge failed: {e}", info.family));
            }
            let (tree, rep) = merge_tree(build_parts())
                .unwrap_or_else(|e| panic!("{}: tree merge failed: {e}", info.family));
            assert_eq!(rep.parts, n, "{}: fan-in", info.family);
            assert_eq!(
                rep.depth,
                (n as f64).log2().ceil() as usize,
                "{}: tree depth at n={n}",
                info.family
            );
            assert_eq!(rep.merges(), n - 1, "{}: merge count", info.family);
            assert_probes_match(
                &format!("{} (tree vs serial fold, n = {n})", info.family),
                &probe(acc.as_ref()),
                &probe(tree.as_ref()),
                info.caps.merge_bitwise,
            );
        }
    }
}

/// Multi-shard runs on non-mergeable families are rejected up front.
#[test]
fn non_mergeable_families_error_beyond_one_shard() {
    let s = stream(0x91);
    let mut rejected = 0;
    for info in registry().families() {
        if info.caps.mergeable {
            continue;
        }
        rejected += 1;
        let spec = conformance_spec(info.family);
        assert!(
            matches!(
                ShardedRunner::new(4).run(registry(), &spec, &s),
                Err(RegistryError::NotMergeable)
            ),
            "{}: expected NotMergeable",
            info.family
        );
    }
    assert!(rejected > 0, "no non-mergeable families left to reject?");
}

/// Per-shard accounting: the shard reports partition the stream, and the
/// summary report's wall clock covers the merge.
#[test]
fn shard_reports_partition_the_stream() {
    let s = stream(0x33);
    let spec = conformance_spec(SketchFamily::Exact);
    let run = ShardedRunner::new(4).run(registry(), &spec, &s).unwrap();
    assert_eq!(run.shards.len(), 4);
    assert_eq!(run.shards.iter().map(|r| r.updates).sum::<usize>(), s.len());
    let per = s.len().div_ceil(4);
    for (i, rep) in run.shards.iter().enumerate() {
        let expect = per.min(s.len() - i * per);
        assert_eq!(rep.updates, expect, "shard {i} size");
    }
    assert!(run.elapsed >= run.merge_elapsed);
    assert!(run.report().updates_per_sec() > 0.0);
}
