//! Conformance suite for the unified `Sketch` trait layer.
//!
//! Every `Sketch` implementation in the workspace is run through the same
//! generic checks:
//!
//! * **same-seed determinism** — constructing from one seed and replaying
//!   one stream yields bit-identical probe outputs;
//! * **`update_batch` ≡ sequential `update`** — sketches that keep the
//!   default loop must match bit-for-bit (identical RNG consumption);
//!   linear sketches with pre-aggregating overrides (Countsketch, Count-Min)
//!   must also match bit-for-bit; the sampling overrides (CSSS, the heavy
//!   hitters) have distribution-level checks in their own module tests and
//!   an output-quality check here;
//! * **linearity** — `update(i, a); update(i, b)` ≡ `update(i, a + b)` for
//!   the linear structures (checked in CSSS's no-thinning regime, where its
//!   sampling is degenerate and exact);
//! * **`Mergeable` associativity** — `(a ⊕ b) ⊕ c ≡ a ⊕ (b ⊕ c)`, and both
//!   equal the single-pass sketch, for the deterministic linear mergers.

use bounded_deletions::prelude::*;

fn stream(seed: u64) -> StreamBatch {
    BoundedDeletionGen::new(1 << 10, 8_000, 3.0).generate_seeded(seed)
}

/// Same seed + same stream ⇒ bit-identical probe output, whether driven
/// per-update or in chunks.
fn check_determinism<S: Sketch>(name: &str, mk: impl Fn() -> S, probe: impl Fn(&S) -> Vec<u64>) {
    let s = stream(0xD5);
    let run = |runner: StreamRunner| {
        let mut sk = mk();
        runner.run(&mut sk, &s);
        probe(&sk)
    };
    assert_eq!(
        run(StreamRunner::unbatched()),
        run(StreamRunner::unbatched()),
        "{name}: same-seed replay diverged (per-update)"
    );
    assert_eq!(
        run(StreamRunner::new()),
        run(StreamRunner::new()),
        "{name}: same-seed replay diverged (batched)"
    );
}

/// Batched ingestion must be bit-identical to sequential ingestion (default
/// loop impls and linear pre-aggregating overrides).
fn check_batch_exact<S: Sketch>(name: &str, mk: impl Fn() -> S, probe: impl Fn(&S) -> Vec<u64>) {
    let s = stream(0xB4);
    let mut seq = mk();
    let mut bat = mk();
    StreamRunner::unbatched().run(&mut seq, &s);
    StreamRunner::new().run(&mut bat, &s);
    assert_eq!(
        probe(&seq),
        probe(&bat),
        "{name}: update_batch diverged from sequential update"
    );
}

/// `update(i, a); update(i, b)` ≡ `update(i, a + b)` under the probe.
fn check_linearity<S: Sketch>(name: &str, mk: impl Fn() -> S, probe: impl Fn(&S) -> Vec<u64>) {
    let pairs: &[(i64, i64)] = &[(3, 4), (10, -6), (-2, -5), (7, -7)];
    let mut split = mk();
    let mut joined = mk();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let item = 37 * idx as u64 + 5;
        split.update(item, a);
        split.update(item, b);
        joined.update(item, a + b);
    }
    assert_eq!(
        probe(&split),
        probe(&joined),
        "{name}: update(i,a);update(i,b) != update(i,a+b)"
    );
}

/// Merge associativity: shard a stream three ways; `(a ⊕ b) ⊕ c`,
/// `a ⊕ (b ⊕ c)`, and the single-pass sketch must agree under the probe.
fn check_merge_associative<S: Mergeable>(
    name: &str,
    mk: impl Fn() -> S,
    probe: impl Fn(&S) -> Vec<u64>,
) {
    let s = stream(0x3A);
    let third = s.len() / 3;
    let shards = [
        &s.updates[..third],
        &s.updates[third..2 * third],
        &s.updates[2 * third..],
    ];
    let sharded = |order_left: bool| {
        let mut parts: Vec<S> = shards
            .iter()
            .map(|shard| {
                let mut sk = mk();
                sk.update_batch(shard);
                sk
            })
            .collect();
        let c = parts.pop().unwrap();
        let mut b = parts.pop().unwrap();
        let mut a = parts.pop().unwrap();
        if order_left {
            a.merge_from(&b);
            a.merge_from(&c);
            probe(&a)
        } else {
            b.merge_from(&c);
            a.merge_from(&b);
            probe(&a)
        }
    };
    let left = sharded(true);
    let right = sharded(false);
    let mut whole = mk();
    whole.update_batch(&s.updates);
    assert_eq!(left, right, "{name}: merge is not associative");
    assert_eq!(left, probe(&whole), "{name}: merge != single-pass sketch");
}

fn bits(vals: impl IntoIterator<Item = f64>) -> Vec<u64> {
    vals.into_iter().map(f64::to_bits).collect()
}

const PROBE_ITEMS: u64 = 1024;

// ---------------------------------------------------------------------------
// bd-sketch baselines
// ---------------------------------------------------------------------------

#[test]
fn countsketch_conformance() {
    let mk = || CountSketch::<i64>::new(11, 7, 96);
    let probe = |s: &CountSketch<i64>| bits((0..PROBE_ITEMS).map(|i| s.estimate(i)));
    check_determinism("CountSketch", mk, probe);
    check_batch_exact("CountSketch", mk, probe);
    check_linearity("CountSketch", mk, probe);
    check_merge_associative("CountSketch", mk, probe);
}

#[test]
fn countmin_conformance() {
    let mk = || CountMin::new(12, 5, 64);
    let probe = |s: &CountMin| (0..PROBE_ITEMS).map(|i| s.estimate(i) as u64).collect();
    check_determinism("CountMin", mk, probe);
    check_batch_exact("CountMin", mk, probe);
    check_linearity("CountMin", mk, probe);
    check_merge_associative("CountMin", mk, probe);
}

#[test]
fn ams_and_ip_families_conformance() {
    let fam = bd_sketch::AmsFamily::new(13, 64);
    let mk = move || fam.sketch();
    let probe = |s: &bd_sketch::AmsSketch| bits([s.f2(8)]);
    check_determinism("AmsSketch", &mk, probe);
    check_batch_exact("AmsSketch", &mk, probe);
    check_merge_associative("AmsSketch", &mk, probe);

    let ipf = bd_sketch::IpFamily::new(14, 5, 48);
    let mk = move || ipf.sketch();
    let probe = |s: &bd_sketch::IpCountSketch| bits([s.inner_product(s)]);
    check_determinism("IpCountSketch", &mk, probe);
    check_batch_exact("IpCountSketch", &mk, probe);
    check_merge_associative("IpCountSketch", &mk, probe);
}

#[test]
fn cauchy_l1_conformance() {
    let mk = || LogCosL1::with_rows(15, 64, 15, 4);
    let probe = |s: &LogCosL1| bits([s.estimate()]);
    check_determinism("LogCosL1", mk, probe);
    check_batch_exact("LogCosL1", mk, probe);

    let mk = || MedianL1::with_rows(16, 32);
    let probe = |s: &MedianL1| bits([s.estimate()]);
    check_determinism("MedianL1", mk, probe);
    check_batch_exact("MedianL1", mk, probe);
}

#[test]
fn l0_baselines_conformance() {
    let mk = || L0Estimator::new(17, 1 << 10, 0.25);
    let probe = |s: &L0Estimator| bits([s.estimate()]);
    check_determinism("L0Estimator", mk, probe);
    check_batch_exact("L0Estimator", mk, probe);

    let mk = || bd_sketch::RoughL0::for_universe(18, 1 << 10);
    let probe = |s: &bd_sketch::RoughL0| vec![s.estimate()];
    check_determinism("RoughL0", mk, probe);
    check_batch_exact("RoughL0", mk, probe);

    let mk = || bd_sketch::RoughF0::new(19);
    let probe = |s: &bd_sketch::RoughF0| vec![s.estimate()];
    check_determinism("RoughF0", mk, probe);
    check_batch_exact("RoughF0", mk, probe);

    let mk = || bd_sketch::SmallL0::new(20, 24, 3);
    let probe = |s: &bd_sketch::SmallL0| vec![s.estimate()];
    check_determinism("SmallL0", mk, probe);
    check_batch_exact("SmallL0", mk, probe);

    let mk = || bd_sketch::SmallF0::new(21, 16);
    let probe = |s: &bd_sketch::SmallF0| match s.result() {
        bd_sketch::SmallF0Result::Exact(v) => vec![0, v],
        bd_sketch::SmallF0Result::Large => vec![1],
    };
    check_determinism("SmallF0", mk, probe);
    check_batch_exact("SmallF0", mk, probe);
}

#[test]
fn sparse_recovery_conformance() {
    let mk = || SparseRecovery::new(22, 1 << 10, 24);
    let probe = |s: &SparseRecovery| match s.decode() {
        Recovery::Sparse(m) => {
            let mut v: Vec<(u64, i64)> = m.into_iter().collect();
            v.sort_unstable();
            v.into_iter().flat_map(|(i, f)| [i, f as u64]).collect()
        }
        Recovery::Dense => vec![u64::MAX],
    };
    check_determinism("SparseRecovery", mk, probe);
    check_batch_exact("SparseRecovery", mk, probe);
    check_linearity("SparseRecovery", mk, probe);
    check_merge_associative("SparseRecovery", mk, probe);
}

#[test]
fn support_and_sampler_baselines_conformance() {
    let mk = || SupportSamplerTurnstile::new(23, 1 << 10, 8);
    let probe = |s: &SupportSamplerTurnstile| s.support();
    check_determinism("SupportSamplerTurnstile", mk, probe);
    check_batch_exact("SupportSamplerTurnstile", mk, probe);

    let mk = || L1SamplerTurnstile::new(24, 1 << 10, 0.25, 0.5);
    let probe = |s: &L1SamplerTurnstile| match s.sample() {
        SampleOutcome::Sample { item, estimate } => vec![item, estimate.to_bits()],
        SampleOutcome::Fail => vec![u64::MAX],
    };
    check_determinism("L1SamplerTurnstile", mk, probe);
    check_batch_exact("L1SamplerTurnstile", mk, probe);
}

#[test]
fn morris_conformance() {
    let mk = || MorrisCounter::new(25);
    let probe = |s: &MorrisCounter| vec![s.estimate()];
    check_determinism("MorrisCounter", mk, probe);
    check_batch_exact("MorrisCounter", mk, probe);
}

// ---------------------------------------------------------------------------
// bd-core α-property structures
// ---------------------------------------------------------------------------

#[test]
fn csss_conformance() {
    // Large budget ⇒ no thinning ⇒ CSSS's sampling is degenerate and the
    // exact checks apply; the thinned regime is covered statistically in the
    // csss module tests.
    let mk = || Csss::new(26, 8, 5, 1 << 22);
    let probe = |s: &Csss| bits((0..PROBE_ITEMS).map(|i| s.estimate(i)));
    check_determinism("Csss", mk, probe);
    check_batch_exact("Csss", mk, probe);
    check_linearity("Csss", mk, probe);
    check_merge_associative("Csss", mk, probe);
}

#[test]
fn sampled_vector_conformance() {
    let mk = || SampledVector::new(27, 1 << 22);
    let probe = |s: &SampledVector| bits((0..PROBE_ITEMS).map(|i| s.estimate(i)));
    check_determinism("SampledVector", mk, probe);
    check_batch_exact("SampledVector", mk, probe);
    check_linearity("SampledVector", mk, probe);
    check_merge_associative("SampledVector", mk, probe);
    // Determinism must also hold in the thinning regime, where halving
    // consumes RNG draws per retained entry (the budget above is large
    // enough that halve() never runs, so it can't catch iteration-order
    // nondeterminism).
    let mk = || SampledVector::new(28, 128);
    check_determinism("SampledVector(thinned)", mk, probe);
    check_batch_exact("SampledVector(thinned)", mk, probe);
}

#[test]
fn alpha_heavy_hitters_conformance() {
    let params = Params::practical(1 << 10, 0.1, 3.0);
    let mk = || AlphaHeavyHitters::new_strict(28, &params);
    let probe = |s: &AlphaHeavyHitters| {
        let mut out: Vec<u64> = s
            .query()
            .into_iter()
            .flat_map(|(i, e)| [i, e.to_bits()])
            .collect();
        out.push(s.norm_estimate().to_bits());
        out
    };
    check_determinism("AlphaHeavyHitters(strict)", mk, probe);

    let mk = || AlphaHeavyHitters::new_general(29, &params);
    check_determinism("AlphaHeavyHitters(general)", mk, probe);
}

#[test]
fn alpha_estimators_conformance() {
    let params = Params::practical(1 << 10, 0.2, 3.0);

    let mk = || AlphaL1Estimator::new(30, &params);
    let probe = |s: &AlphaL1Estimator| bits([s.estimate()]);
    check_determinism("AlphaL1Estimator", mk, probe);
    check_batch_exact("AlphaL1Estimator", mk, probe);

    let mk = || AlphaL1General::new(31, &params);
    let probe = |s: &AlphaL1General| bits([s.estimate()]);
    check_determinism("AlphaL1General", mk, probe);
    check_batch_exact("AlphaL1General", mk, probe);

    let mk = || AlphaL0Estimator::new(32, &params);
    let probe = |s: &AlphaL0Estimator| bits([s.estimate()]);
    check_determinism("AlphaL0Estimator", mk, probe);
    check_batch_exact("AlphaL0Estimator", mk, probe);

    let mk = || AlphaConstL0::new(33, &params);
    let probe = |s: &AlphaConstL0| vec![s.estimate()];
    check_determinism("AlphaConstL0", mk, probe);
    check_batch_exact("AlphaConstL0", mk, probe);

    let mk = || AlphaRoughL0::new(34, 1 << 10);
    let probe = |s: &AlphaRoughL0| vec![s.estimate()];
    check_determinism("AlphaRoughL0", mk, probe);
    check_batch_exact("AlphaRoughL0", mk, probe);

    let mk = || AlphaL2HeavyHitters::new(35, &params);
    let probe = |s: &AlphaL2HeavyHitters| {
        let mut out: Vec<u64> = s
            .query()
            .into_iter()
            .flat_map(|(i, e)| [i, e.to_bits()])
            .collect();
        out.push(s.l2_estimate().to_bits());
        out
    };
    check_determinism("AlphaL2HeavyHitters", mk, probe);
    check_batch_exact("AlphaL2HeavyHitters", mk, probe);
}

#[test]
fn alpha_samplers_conformance() {
    let params = Params::practical(1 << 10, 0.25, 3.0).with_delta(0.5);

    let mk = || AlphaL1Sampler::new(36, &params);
    let probe = |s: &AlphaL1Sampler| match s.sample() {
        SampleOutcome::Sample { item, estimate } => vec![item, estimate.to_bits()],
        SampleOutcome::Fail => vec![u64::MAX],
    };
    check_determinism("AlphaL1Sampler", mk, probe);

    let mk = || AlphaSupportSampler::new(37, &params, 8);
    let probe = |s: &AlphaSupportSampler| s.query();
    check_determinism("AlphaSupportSampler", mk, probe);
    check_batch_exact("AlphaSupportSampler", mk, probe);

    let mk = || AlphaSupportSamplerSet::new(38, &params, 8);
    let probe = |s: &AlphaSupportSamplerSet| s.query();
    check_determinism("AlphaSupportSamplerSet", mk, probe);
    check_batch_exact("AlphaSupportSamplerSet", mk, probe);
}

#[test]
fn alpha_ip_sketch_conformance() {
    let params = Params::practical(1 << 10, 0.2, 3.0);
    let family = bd_core::AlphaIpFamily::new(39, &params, 3);
    let mk = move || family.sketch(40);
    let probe = |s: &bd_core::AlphaIpSketch| bits([s.inner_product(s)]);
    check_determinism("AlphaIpSketch", &mk, probe);
}

#[test]
fn frequency_vector_is_the_reference_sketch() {
    let mk = || FrequencyVector::new(1 << 10);
    let probe = |s: &FrequencyVector| (0..PROBE_ITEMS).map(|i| s.get(i) as u64).collect();
    check_determinism("FrequencyVector", mk, probe);
    check_batch_exact("FrequencyVector", mk, probe);
    check_linearity("FrequencyVector", mk, probe);
}

/// The batched heavy-hitter path must answer queries as well as the
/// sequential one (the override is statistical, not bitwise).
#[test]
fn heavy_hitters_batched_quality_matches() {
    let eps = 0.05;
    let s = BoundedDeletionGen::new(1 << 12, 40_000, 4.0).generate_seeded(0x51);
    let truth = FrequencyVector::from_stream(&s);
    let params = Params::practical(s.n, eps, 4.0);
    for runner in [StreamRunner::unbatched(), StreamRunner::new()] {
        let mut hh = AlphaHeavyHitters::new_strict(99, &params);
        runner.run(&mut hh, &s);
        let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
        for i in truth.l1_heavy_hitters(eps) {
            assert!(got.contains(&i), "missed {i} (chunk {})", runner.chunk());
        }
    }
}
