//! Conformance suite for the unified `Sketch` trait layer, driven by the
//! workspace registry.
//!
//! The suite iterates `registry().families()` — it maintains **no
//! hand-written list of structures**. Registering a new family in its
//! defining crate automatically enrols it here, and each family's
//! [`Capabilities`] descriptor declares which contracts apply:
//!
//! * **same-seed determinism** (every family) — building one spec twice and
//!   replaying one stream yields bit-identical query probes, per-update and
//!   batched;
//! * **`update_batch` ≡ sequential `update`** (`caps.batch_bitwise`) —
//!   bit-identical probes whether driven per-update or in chunks (families
//!   with *statistical* batch overrides — the α heavy hitters, the general
//!   α L1 estimator — opt out and are covered by the quality checks below);
//! * **linearity** (`caps.linear`) — `update(i,a); update(i,b)` ≡
//!   `update(i, a+b)`;
//! * **`Mergeable` laws** (`caps.mergeable`, via `merge_dyn`) —
//!   associativity `(a ⊕ b) ⊕ c ≡ a ⊕ (b ⊕ c)` ≡ the single-pass sketch,
//!   commutativity `a ⊕ b ≡ b ⊕ a`, and identity `a ⊕ empty ≡ a ≡
//!   empty ⊕ a`. Families with `merge_bitwise` must agree bit-for-bit;
//!   the rest are estimate-equal (see `DESIGN.md §7`);
//! * **capability consistency** — the descriptor's query flags match the
//!   built sketch's dynamic views.
//!
//! Sampling families run their exact checks in a degenerate (no-thinning)
//! regime via a budget override in `common::conformance_spec`; their thinned
//! regimes keep distribution-level checks in their module tests plus the
//! extra thinned determinism case here.

mod common;

use bounded_deletions::prelude::*;
use common::{assert_probes_match, conformance_spec, probe, stream, ProbeVal};

/// Same spec + same stream ⇒ bit-identical probes, whether driven
/// per-update or in chunks.
fn check_determinism(name: &str, spec: &SketchSpec) {
    let s = stream(0xD5);
    let run = |runner: StreamRunner| {
        let mut sk = registry().build(spec).unwrap();
        runner.run(&mut *sk, &s);
        probe(sk.as_ref())
    };
    assert_probes_match(
        &format!("{name} (per-update replay)"),
        &run(StreamRunner::unbatched()),
        &run(StreamRunner::unbatched()),
        true,
    );
    assert_probes_match(
        &format!("{name} (batched replay)"),
        &run(StreamRunner::new()),
        &run(StreamRunner::new()),
        true,
    );
}

/// Batched ingestion must be bit-identical to sequential ingestion.
fn check_batch_exact(name: &str, spec: &SketchSpec) {
    let s = stream(0xB4);
    let (mut seq, mut bat) = registry().build_pair(spec).unwrap();
    StreamRunner::unbatched().run(&mut *seq, &s);
    StreamRunner::new().run(&mut *bat, &s);
    assert_probes_match(
        &format!("{name} (update_batch vs update)"),
        &probe(seq.as_ref()),
        &probe(bat.as_ref()),
        true,
    );
}

/// `update(i, a); update(i, b)` ≡ `update(i, a + b)` under the probe.
fn check_linearity(name: &str, spec: &SketchSpec) {
    let pairs: &[(i64, i64)] = &[(3, 4), (10, -6), (-2, -5), (7, -7)];
    let (mut split, mut joined) = registry().build_pair(spec).unwrap();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let item = 37 * idx as u64 + 5;
        split.update(item, a);
        split.update(item, b);
        joined.update(item, a + b);
    }
    assert_probes_match(
        &format!("{name} (linearity)"),
        &probe(split.as_ref()),
        &probe(joined.as_ref()),
        true,
    );
}

/// Build the spec's sketch over one shard of updates.
fn shard_sketch(spec: &SketchSpec, shard: &[Update]) -> Box<dyn DynSketch> {
    let mut sk = registry().build(spec).unwrap();
    sk.update_batch(shard);
    sk
}

/// Merge associativity through the dynamic merge hook: shard a stream three
/// ways; `(a ⊕ b) ⊕ c`, `a ⊕ (b ⊕ c)`, and the single-pass sketch agree.
fn check_merge_associative(name: &str, spec: &SketchSpec, bitwise: bool) {
    let s = stream(0x3A);
    let third = s.len() / 3;
    let shards = [
        &s.updates[..third],
        &s.updates[third..2 * third],
        &s.updates[2 * third..],
    ];
    let sharded = |order_left: bool| {
        let mut parts: Vec<Box<dyn DynSketch>> = shards
            .iter()
            .map(|shard| shard_sketch(spec, shard))
            .collect();
        let c = parts.pop().unwrap();
        let mut b = parts.pop().unwrap();
        let mut a = parts.pop().unwrap();
        if order_left {
            a.merge_dyn(b.as_ref()).unwrap();
            a.merge_dyn(c.as_ref()).unwrap();
            probe(a.as_ref())
        } else {
            b.merge_dyn(c.as_ref()).unwrap();
            a.merge_dyn(b.as_ref()).unwrap();
            probe(a.as_ref())
        }
    };
    let left = sharded(true);
    let right = sharded(false);
    let mut whole = registry().build(spec).unwrap();
    whole.update_batch(&s.updates);
    assert_probes_match(&format!("{name} (associativity)"), &left, &right, bitwise);
    assert_probes_match(
        &format!("{name} (merge vs single pass)"),
        &left,
        &probe(whole.as_ref()),
        bitwise,
    );
}

/// The interleaved-merge law — the property epoch snapshots actually rely
/// on: a sketch that has been merged *keeps ingesting* correctly, and
/// merging commutes with ingestion. `merge(a, b)` then ingest `c` must
/// agree with ingest `c` then `merge(·, b)` (the service's workers are
/// merged mid-stream as clones while the originals ingest on).
fn check_merge_interleaved(name: &str, spec: &SketchSpec, bitwise: bool) {
    let s = stream(0x1E);
    let third = s.len() / 3;
    let (s1, s2, s3) = (
        &s.updates[..third],
        &s.updates[third..2 * third],
        &s.updates[2 * third..],
    );
    let b = shard_sketch(spec, s2);
    // merge first, ingest after …
    let mut merged_then_fed = shard_sketch(spec, s1);
    merged_then_fed.merge_dyn(b.as_ref()).unwrap();
    merged_then_fed.update_batch(s3);
    // … versus ingest first, merge after.
    let mut fed_then_merged = shard_sketch(spec, s1);
    fed_then_merged.update_batch(s3);
    fed_then_merged.merge_dyn(b.as_ref()).unwrap();
    assert_probes_match(
        &format!("{name} (merge·ingest interleaving)"),
        &probe(merged_then_fed.as_ref()),
        &probe(fed_then_merged.as_ref()),
        bitwise,
    );
}

/// Merge commutativity: `a ⊕ b ≡ b ⊕ a` on a two-way shard split.
fn check_merge_commutative(name: &str, spec: &SketchSpec, bitwise: bool) {
    let s = stream(0xC0);
    let half = s.len() / 2;
    let (left, right) = (&s.updates[..half], &s.updates[half..]);
    let mut ab = shard_sketch(spec, left);
    ab.merge_dyn(shard_sketch(spec, right).as_ref()).unwrap();
    let mut ba = shard_sketch(spec, right);
    ba.merge_dyn(shard_sketch(spec, left).as_ref()).unwrap();
    assert_probes_match(
        &format!("{name} (commutativity)"),
        &probe(ab.as_ref()),
        &probe(ba.as_ref()),
        bitwise,
    );
}

/// Merge identity: folding in a fresh (never-updated) copy changes nothing,
/// from either side.
fn check_merge_identity(name: &str, spec: &SketchSpec, bitwise: bool) {
    let s = stream(0x1D);
    let alone = shard_sketch(spec, &s.updates);
    let want = probe(alone.as_ref());
    let mut right = shard_sketch(spec, &s.updates);
    right
        .merge_dyn(registry().build(spec).unwrap().as_ref())
        .unwrap();
    assert_probes_match(
        &format!("{name} (a ⊕ empty)"),
        &want,
        &probe(right.as_ref()),
        bitwise,
    );
    let mut left = registry().build(spec).unwrap();
    left.merge_dyn(alone.as_ref()).unwrap();
    assert_probes_match(
        &format!("{name} (empty ⊕ a)"),
        &want,
        &probe(left.as_ref()),
        bitwise,
    );
}

#[test]
fn every_family_is_deterministic() {
    for info in registry().families() {
        check_determinism(info.family.name(), &conformance_spec(info.family));
    }
}

#[test]
fn declared_batch_bitwise_families_match_sequential() {
    for info in registry().families() {
        if info.caps.batch_bitwise {
            check_batch_exact(info.family.name(), &conformance_spec(info.family));
        }
    }
}

#[test]
fn declared_linear_families_are_linear() {
    for info in registry().families() {
        if info.caps.linear {
            check_linearity(info.family.name(), &conformance_spec(info.family));
        }
    }
}

#[test]
fn declared_mergeable_families_merge_associatively() {
    for info in registry().families() {
        if info.caps.mergeable {
            check_merge_associative(
                info.family.name(),
                &conformance_spec(info.family),
                info.caps.merge_bitwise,
            );
        }
    }
}

#[test]
fn declared_mergeable_families_merge_commutatively() {
    for info in registry().families() {
        if info.caps.mergeable {
            check_merge_commutative(
                info.family.name(),
                &conformance_spec(info.family),
                info.caps.merge_bitwise,
            );
        }
    }
}

#[test]
fn merging_interleaves_with_ingestion() {
    for info in registry().families() {
        if info.caps.mergeable {
            check_merge_interleaved(
                info.family.name(),
                &conformance_spec(info.family),
                info.caps.merge_bitwise,
            );
        }
    }
}

#[test]
fn merging_an_empty_sketch_is_identity() {
    for info in registry().families() {
        if info.caps.mergeable {
            check_merge_identity(
                info.family.name(),
                &conformance_spec(info.family),
                info.caps.merge_bitwise,
            );
        }
    }
}

/// The capability descriptor must match the built sketch's dynamic views,
/// and every probe must observe at least one query capability — otherwise
/// the determinism checks above would be vacuous for that family.
#[test]
fn capability_descriptors_match_built_sketches() {
    for info in registry().families() {
        let spec = conformance_spec(info.family);
        let mut sk = registry().build(&spec).unwrap();
        let name = info.family.name();
        assert_eq!(sk.as_point().is_some(), info.caps.point, "{name}: point");
        assert_eq!(
            sk.as_point_batch().is_some(),
            info.caps.point_batch,
            "{name}: point_batch"
        );
        assert!(
            info.caps.point || !info.caps.point_batch,
            "{name}: point_batch without point"
        );
        assert_eq!(sk.as_norm().is_some(), info.caps.norm, "{name}: norm");
        assert_eq!(sk.as_sample().is_some(), info.caps.sample, "{name}: sample");
        assert_eq!(
            sk.as_support().is_some(),
            info.caps.support,
            "{name}: support"
        );
        assert!(
            info.caps.point || info.caps.norm || info.caps.sample || info.caps.support,
            "{name}: no query capability — conformance probes would be vacuous"
        );
        // merge_dyn agrees with the mergeable flag, and merge_bitwise is
        // only ever claimed for mergeable families.
        let other = registry().build(&spec).unwrap();
        let merged = sk.merge_dyn(other.as_ref());
        assert_eq!(merged.is_ok(), info.caps.mergeable, "{name}: mergeable");
        assert!(
            info.caps.mergeable || !info.caps.merge_bitwise,
            "{name}: merge_bitwise without mergeable"
        );
    }
}

/// Determinism must also hold in the *thinning* regime, where halving
/// consumes RNG draws per retained entry (the degenerate budget above never
/// thins, so it can't catch iteration-order nondeterminism).
#[test]
fn thinned_sampling_regime_stays_deterministic() {
    for family in [SketchFamily::SampledVector, SketchFamily::Csss] {
        let spec = conformance_spec(family).with_budget(128).with_seed(28);
        check_determinism("thinned", &spec);
    }
    // SampledVector keeps the default sequential batch loop, so bitwise
    // batch equality holds even while thinning; CSSS's pre-aggregating
    // override is only statistical there (covered by its module tests).
    let spec = conformance_spec(SketchFamily::SampledVector)
        .with_budget(128)
        .with_seed(28);
    check_batch_exact("thinned(SampledVector)", &spec);
}

/// The batched heavy-hitter paths must answer queries as well as the
/// sequential ones (their overrides are statistical, not bitwise — they opt
/// out of `batch_bitwise`).
#[test]
fn heavy_hitters_batched_quality_matches() {
    let eps = 0.05;
    let s = BoundedDeletionGen::new(1 << 12, 40_000, 4.0).generate_seeded(0x51);
    let truth = FrequencyVector::from_stream(&s);
    for family in [SketchFamily::AlphaHh, SketchFamily::AlphaHhGeneral] {
        let spec = SketchSpec::new(family)
            .with_n(s.n)
            .with_epsilon(eps)
            .with_alpha(4.0)
            .with_seed(99);
        for runner in [StreamRunner::unbatched(), StreamRunner::new()] {
            let mut hh: AlphaHeavyHitters = build_sketch(&spec);
            runner.run(&mut hh, &s);
            let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
            for i in truth.l1_heavy_hitters(eps) {
                assert!(
                    got.contains(&i),
                    "{family}: missed {i} (chunk {})",
                    runner.chunk()
                );
            }
        }
    }
}

/// The general α L1 estimator's pre-aggregating batch path is statistical
/// (per-weight quantization + one binomial draw per collapsed item): both
/// drive modes must land within the module-test tolerance of exact L1.
#[test]
fn l1_general_batched_quality_matches() {
    let s = BoundedDeletionGen::new(1 << 12, 60_000, 3.0).generate_seeded(0x71);
    let truth = FrequencyVector::from_stream(&s).l1() as f64;
    let spec = SketchSpec::new(SketchFamily::AlphaL1General)
        .with_n(s.n)
        .with_epsilon(0.2)
        .with_alpha(3.0)
        .with_seed(17);
    for runner in [StreamRunner::unbatched(), StreamRunner::new()] {
        let mut sk = registry().build(&spec).unwrap();
        runner.run(&mut *sk, &s);
        let est = sk.as_norm().expect("norm family").norm_estimate();
        assert!(
            (est - truth).abs() / truth < 0.35,
            "alpha_l1_general estimate {est} vs exact {truth} (chunk {})",
            runner.chunk()
        );
    }
}

/// The deletion-fraction (α-regime) accounting the service's `EpochReport`
/// is built on: on the shared conformance workload, the mass-accounting α
/// floor `(I+D)/(I−D)` must lower-bound the realized α₁ = (I+D)/‖f‖₁
/// exactly, the deletion fraction must respect the α-property cap
/// `(α−1)/(2α)`, and a deletion-heavy stream must be flagged as violating
/// a too-tight configured α.
#[test]
fn epoch_report_alpha_accounting_matches_ground_truth() {
    let s = stream(0xA1);
    let truth = FrequencyVector::from_stream(&s);
    let mut svc = StreamService::start(
        registry(),
        &conformance_spec(SketchFamily::Exact), // α = 3 configured
        ServiceConfig::default().with_epoch(1 << 20).with_threads(2),
    )
    .unwrap();
    svc.ingest(&s.updates).unwrap();
    let rep = svc.finish().unwrap().expect("one final epoch").report;
    // Exact mass accounting against the stream.
    let del: u64 = s
        .updates
        .iter()
        .filter(|u| u.delta < 0)
        .map(|u| u.delta.unsigned_abs())
        .sum();
    assert_eq!(rep.total_mass(), s.total_mass());
    assert_eq!(rep.total_deleted, del);
    // The α floor bounds (and here, with every coordinate non-negative at
    // the end of a BoundedDeletionGen stream, nearly matches) realized α₁.
    assert!(rep.alpha_observed() <= truth.alpha_l1() + 1e-9);
    assert!(
        rep.alpha_observed() > 1.0,
        "mixed stream must observe α > 1"
    );
    // The workload honours its α = 3 promise, and the report agrees.
    assert!(
        rep.within_alpha(),
        "α floor {} vs configured 3",
        rep.alpha_observed()
    );
    assert!(rep.deletion_fraction() <= EpochReport::deletion_cap(rep.alpha_configured));
    // A deletion-heavy epoch must trip the flag against a tight α.
    let heavy: Vec<Update> = (0..600)
        .map(|i| Update::new(i % 64, 2))
        .chain((0..500).map(|i| Update::new(i % 64, -2)))
        .collect();
    let mut tight = StreamService::start(
        registry(),
        &conformance_spec(SketchFamily::Exact).with_alpha(2.0),
        ServiceConfig::default().with_epoch(1 << 20).with_threads(2),
    )
    .unwrap();
    tight.ingest(&heavy).unwrap();
    let rep = tight.finish().unwrap().unwrap().report;
    assert!(
        (rep.alpha_observed() - 11.0).abs() < 1e-9,
        "I=1200, D=1000 ⇒ floor 11"
    );
    assert!(
        !rep.within_alpha(),
        "α floor 11 must violate configured α = 2"
    );
    assert!(rep.deletion_fraction() > EpochReport::deletion_cap(2.0));
}

/// The [`PointQueryBatch`] law: for every family that advertises the
/// batched point path, `point_many` over an arbitrary query set (duplicates
/// included) must be **bit-identical**, item by item, to the scalar
/// `point` calls on the same state — the batch only amortizes hashing, it
/// must not change the arithmetic. This is what lets the query engine and
/// the TCP front-end route through the batch unconditionally.
#[test]
fn batched_point_queries_match_scalar_bit_for_bit() {
    let s = stream(0xBA);
    let mut covered = 0;
    for info in registry().families() {
        if !info.caps.point_batch {
            continue;
        }
        covered += 1;
        let name = info.family.name();
        let mut sk = registry().build(&conformance_spec(info.family)).unwrap();
        StreamRunner::new().run(&mut *sk, &s);
        // Dense prefix, strided sweep, and deliberate duplicates.
        let items: Vec<u64> = (0..256u64)
            .chain((0..64).map(|i| i * 13 % 1024))
            .chain([3, 3, 3])
            .collect();
        let batch = sk.as_point_batch().unwrap();
        let point = sk.as_point().unwrap();
        let mut out = Vec::new();
        batch.point_many(&items, &mut out);
        assert_eq!(out.len(), items.len(), "{name}: wrong batch length");
        for (&i, &est) in items.iter().zip(&out) {
            assert_eq!(
                est.to_bits(),
                point.point(i).to_bits(),
                "{name}: batched point of {i} diverged"
            );
        }
        // Contract: append, don't clear.
        batch.point_many(&items[..4], &mut out);
        assert_eq!(out.len(), items.len() + 4, "{name}: batch must append");
    }
    assert!(covered >= 5, "batched-point catalog shrank: {covered}");
}

/// `ProbeVal` is part of the shared test-helper contract; pin the kinds so
/// a helper refactor can't silently weaken the comparisons.
#[test]
fn probe_distinguishes_items_from_scalars() {
    let spec = conformance_spec(SketchFamily::Exact);
    let mut sk = registry().build(&spec).unwrap();
    sk.update(3, 7);
    let p = probe(sk.as_ref());
    assert!(p
        .iter()
        .any(|v| matches!(v, ProbeVal::Scalar(x) if *x == 7.0)));
}

/// The persist round-trip law: for every family advertising the persist
/// capability, `from_bytes(to_bytes(s))` restores the **full** mutable
/// state — probes bit-identical, re-encoding deterministic, and (the
/// property recovery actually relies on) continued ingestion after the
/// round trip bit-identical to never having been encoded at all. Families
/// without the capability must refuse with the typed error, and the
/// descriptor flag must agree with the built sketch's dynamic accessor.
#[test]
fn persistable_families_roundtrip_bit_for_bit() {
    let s = stream(0x5A);
    let half = s.len() / 2;
    let (prefix, tail) = (&s.updates[..half], &s.updates[half..]);
    let mut covered = 0;
    for info in registry().families() {
        let name = info.family.name();
        let spec = conformance_spec(info.family);
        let mut sk = registry().build(&spec).unwrap();
        assert_eq!(
            sk.persist_state().is_some(),
            info.caps.persist,
            "{name}: persist capability flag disagrees with the state accessor"
        );
        if !info.caps.persist {
            assert_eq!(
                sketch_to_bytes(&spec, sk.as_ref()).map(|_| ()),
                Err(PersistError::NotPersistable),
                "{name}: encoding without the capability must be the typed refusal"
            );
            continue;
        }
        covered += 1;
        sk.update_batch(prefix);
        let bytes = sketch_to_bytes(&spec, sk.as_ref()).unwrap();
        let (decoded_spec, mut restored) = sketch_from_bytes(registry(), &bytes)
            .unwrap_or_else(|e| panic!("{name}: round-trip decode failed: {e}"));
        assert_eq!(decoded_spec, spec, "{name}: spec stamp drifted");
        assert_probes_match(
            &format!("{name} (persist round-trip)"),
            &probe(sk.as_ref()),
            &probe(restored.as_ref()),
            true,
        );
        assert_eq!(
            bytes,
            sketch_to_bytes(&decoded_spec, restored.as_ref()).unwrap(),
            "{name}: re-encoding the restored sketch is not deterministic"
        );
        // Restart ≡ uninterrupted: both continue over the tail.
        sk.update_batch(tail);
        restored.update_batch(tail);
        assert_probes_match(
            &format!("{name} (ingestion after restore)"),
            &probe(sk.as_ref()),
            &probe(restored.as_ref()),
            true,
        );
    }
    assert!(
        covered >= 20,
        "persistable catalog shrank unexpectedly: {covered} families"
    );
}

/// Adversarial snapshot decoding: truncations at every boundary, a
/// deterministic bit-flip sweep, wrong versions, bad magic, and oversized
/// length headers all land on typed [`PersistError`]s — never a panic,
/// never an unbounded allocation.
#[test]
fn adversarial_snapshot_decodes_are_typed_errors() {
    let s = stream(0xAD);
    let spec = conformance_spec(SketchFamily::Exact);
    let mut sk = registry().build(&spec).unwrap();
    sk.update_batch(&s.updates);
    let blob = sketch_to_bytes(&spec, sk.as_ref()).unwrap();

    // Sketch blob: every truncation length decodes to a typed error.
    for cut in 0..blob.len() {
        let err = sketch_from_bytes(registry(), &blob[..cut])
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::BadMagic
                    | PersistError::State(_)
                    | PersistError::UnsupportedVersion(_)
            ),
            "blob truncated at {cut}: unexpected {err:?}"
        );
    }

    // Snapshot file image around the blob.
    let mut svc = StreamService::start(
        registry(),
        &spec,
        ServiceConfig::default()
            .with_epoch(s.len() as u64)
            .with_threads(1),
    )
    .unwrap();
    let mut snaps = svc.ingest(&s.updates).unwrap();
    snaps.extend(svc.finish().unwrap());
    let snap = snaps.pop().expect("one full epoch");
    let file = encode_snapshot(
        &spec,
        "service:test",
        &snap.report,
        snap.report.total_updates as u64,
        snap.sketch.as_ref(),
    )
    .unwrap();
    assert!(decode_snapshot(registry(), &file).is_ok());

    // Truncation sweep: every prefix fails with a typed error.
    for cut in 0..file.len() {
        assert!(
            decode_snapshot(registry(), &file[..cut]).is_err(),
            "file truncated at {cut} decoded"
        );
    }
    // Deterministic bit-flip sweep: a stride relatively prime to 8 visits
    // both header and payload bits; the CRC (or an envelope check before
    // it) must reject every single-bit corruption.
    let total_bits = file.len() * 8;
    let mut flipped_checked = 0usize;
    let mut bit = 0usize;
    while bit < total_bits {
        let mut bad = file.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        assert!(
            decode_snapshot(registry(), &bad).is_err(),
            "bit flip at {bit} decoded"
        );
        flipped_checked += 1;
        bit += 131;
    }
    assert!(flipped_checked > 50, "bit-flip sweep degenerated");

    // Wrong version (newer than this build) is its own typed error.
    let mut newer = file.clone();
    newer[4..6].copy_from_slice(&(PERSIST_VERSION + 1).to_le_bytes());
    assert_eq!(
        decode_snapshot(registry(), &newer).unwrap_err(),
        PersistError::UnsupportedVersion(PERSIST_VERSION + 1)
    );
    // Wrong magic.
    let mut magic = file.clone();
    magic[..4].copy_from_slice(b"NOPE");
    assert_eq!(
        decode_snapshot(registry(), &magic).unwrap_err(),
        PersistError::BadMagic
    );
    // An oversized length header is rejected before any allocation.
    let mut huge = file.clone();
    huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_snapshot(registry(), &huge).unwrap_err(),
        PersistError::Oversized(u32::MAX as u64)
    );
}
