//! Conformance suite for the unified `Sketch` trait layer, driven by the
//! workspace registry.
//!
//! The suite iterates `registry().families()` — it maintains **no
//! hand-written list of structures**. Registering a new family in its
//! defining crate automatically enrols it here, and each family's
//! [`Capabilities`] descriptor declares which contracts apply:
//!
//! * **same-seed determinism** (every family) — building one spec twice and
//!   replaying one stream yields bit-identical query probes, per-update and
//!   batched;
//! * **`update_batch` ≡ sequential `update`** (`caps.batch_bitwise`) —
//!   bit-identical probes whether driven per-update or in chunks (families
//!   with *statistical* batch overrides, like the α heavy hitters, opt out
//!   and are covered by the quality check below);
//! * **linearity** (`caps.linear`) — `update(i,a); update(i,b)` ≡
//!   `update(i, a+b)`;
//! * **`Mergeable` associativity** (`caps.mergeable`, via `merge_dyn`) —
//!   `(a ⊕ b) ⊕ c ≡ a ⊕ (b ⊕ c)` ≡ the single-pass sketch;
//! * **capability consistency** — the descriptor's query flags match the
//!   built sketch's dynamic views.
//!
//! Sampling families run their exact checks in a degenerate (no-thinning)
//! regime via a budget override in [`conformance_spec`]; their thinned
//! regimes keep distribution-level checks in their module tests plus the
//! extra thinned determinism case here.

use bounded_deletions::prelude::*;

fn stream(seed: u64) -> StreamBatch {
    BoundedDeletionGen::new(1 << 10, 8_000, 3.0).generate_seeded(seed)
}

/// Deterministic per-family seed (stable across registry reordering).
fn family_seed(family: SketchFamily) -> u64 {
    family
        .name()
        .bytes()
        .fold(11u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
}

/// The spec each family is checked under: small universe, fast shapes, and
/// — for the sampling structures — regimes where the exact contracts hold.
fn conformance_spec(family: SketchFamily) -> SketchSpec {
    let spec = SketchSpec::new(family)
        .with_n(1 << 10)
        .with_epsilon(0.2)
        .with_alpha(3.0)
        .with_seed(family_seed(family));
    match family {
        // Budget larger than the stream mass ⇒ no thinning ⇒ sampling is
        // degenerate and the bitwise/linearity contracts are exact.
        SketchFamily::Csss | SketchFamily::SampledVector => spec.with_budget(1 << 22),
        // Samplers: fewer amplification copies for test speed.
        SketchFamily::AlphaL1Sampler | SketchFamily::L1SamplerTurnstile => {
            spec.with_epsilon(0.25).with_delta(0.5)
        }
        SketchFamily::AlphaSupportSet => spec.with_delta(0.5).with_k(8),
        SketchFamily::AlphaSupport | SketchFamily::SupportTurnstile => spec.with_k(8),
        _ => spec,
    }
}

/// Query probe over every capability the sketch exposes: the bit-level
/// fingerprint the conformance checks compare. (Space is deliberately not
/// probed: pre-aggregating batch paths may observe different counter peaks
/// than the sequential replay while answering identically.)
fn probe(sk: &dyn DynSketch) -> Vec<u64> {
    let mut out = Vec::new();
    if let Some(p) = sk.as_point() {
        out.extend((0..1024u64).map(|i| p.point(i).to_bits()));
    }
    if let Some(nm) = sk.as_norm() {
        out.push(nm.norm_estimate().to_bits());
    }
    if let Some(s) = sk.as_sample() {
        match s.sample() {
            SampleOutcome::Sample { item, estimate } => {
                out.push(item);
                out.push(estimate.to_bits());
            }
            SampleOutcome::Fail => out.push(u64::MAX),
        }
    }
    if let Some(sp) = sk.as_support() {
        out.push(u64::MAX - 1); // section marker
        out.extend(sp.support_query());
    }
    out
}

/// Same spec + same stream ⇒ bit-identical probes, whether driven
/// per-update or in chunks.
fn check_determinism(name: &str, spec: &SketchSpec) {
    let s = stream(0xD5);
    let run = |runner: StreamRunner| {
        let mut sk = registry().build(spec).unwrap();
        runner.run(&mut *sk, &s);
        probe(sk.as_ref())
    };
    assert_eq!(
        run(StreamRunner::unbatched()),
        run(StreamRunner::unbatched()),
        "{name}: same-spec replay diverged (per-update)"
    );
    assert_eq!(
        run(StreamRunner::new()),
        run(StreamRunner::new()),
        "{name}: same-spec replay diverged (batched)"
    );
}

/// Batched ingestion must be bit-identical to sequential ingestion.
fn check_batch_exact(name: &str, spec: &SketchSpec) {
    let s = stream(0xB4);
    let (mut seq, mut bat) = registry().build_pair(spec).unwrap();
    StreamRunner::unbatched().run(&mut *seq, &s);
    StreamRunner::new().run(&mut *bat, &s);
    assert_eq!(
        probe(seq.as_ref()),
        probe(bat.as_ref()),
        "{name}: update_batch diverged from sequential update"
    );
}

/// `update(i, a); update(i, b)` ≡ `update(i, a + b)` under the probe.
fn check_linearity(name: &str, spec: &SketchSpec) {
    let pairs: &[(i64, i64)] = &[(3, 4), (10, -6), (-2, -5), (7, -7)];
    let (mut split, mut joined) = registry().build_pair(spec).unwrap();
    for (idx, &(a, b)) in pairs.iter().enumerate() {
        let item = 37 * idx as u64 + 5;
        split.update(item, a);
        split.update(item, b);
        joined.update(item, a + b);
    }
    assert_eq!(
        probe(split.as_ref()),
        probe(joined.as_ref()),
        "{name}: update(i,a);update(i,b) != update(i,a+b)"
    );
}

/// Merge associativity through the dynamic merge hook: shard a stream three
/// ways; `(a ⊕ b) ⊕ c`, `a ⊕ (b ⊕ c)`, and the single-pass sketch agree.
fn check_merge_associative(name: &str, spec: &SketchSpec) {
    let s = stream(0x3A);
    let third = s.len() / 3;
    let shards = [
        &s.updates[..third],
        &s.updates[third..2 * third],
        &s.updates[2 * third..],
    ];
    let sharded = |order_left: bool| {
        let mut parts: Vec<Box<dyn DynSketch>> = shards
            .iter()
            .map(|shard| {
                let mut sk = registry().build(spec).unwrap();
                sk.update_batch(shard);
                sk
            })
            .collect();
        let c = parts.pop().unwrap();
        let mut b = parts.pop().unwrap();
        let mut a = parts.pop().unwrap();
        if order_left {
            a.merge_dyn(b.as_ref()).unwrap();
            a.merge_dyn(c.as_ref()).unwrap();
            probe(a.as_ref())
        } else {
            b.merge_dyn(c.as_ref()).unwrap();
            a.merge_dyn(b.as_ref()).unwrap();
            probe(a.as_ref())
        }
    };
    let left = sharded(true);
    let right = sharded(false);
    let mut whole = registry().build(spec).unwrap();
    whole.update_batch(&s.updates);
    assert_eq!(left, right, "{name}: merge is not associative");
    assert_eq!(
        left,
        probe(whole.as_ref()),
        "{name}: merge != single-pass sketch"
    );
}

#[test]
fn every_family_is_deterministic() {
    for info in registry().families() {
        check_determinism(info.family.name(), &conformance_spec(info.family));
    }
}

#[test]
fn declared_batch_bitwise_families_match_sequential() {
    for info in registry().families() {
        if info.caps.batch_bitwise {
            check_batch_exact(info.family.name(), &conformance_spec(info.family));
        }
    }
}

#[test]
fn declared_linear_families_are_linear() {
    for info in registry().families() {
        if info.caps.linear {
            check_linearity(info.family.name(), &conformance_spec(info.family));
        }
    }
}

#[test]
fn declared_mergeable_families_merge_associatively() {
    for info in registry().families() {
        if info.caps.mergeable {
            check_merge_associative(info.family.name(), &conformance_spec(info.family));
        }
    }
}

/// The capability descriptor must match the built sketch's dynamic views,
/// and every probe must observe at least one query capability — otherwise
/// the determinism checks above would be vacuous for that family.
#[test]
fn capability_descriptors_match_built_sketches() {
    for info in registry().families() {
        let spec = conformance_spec(info.family);
        let mut sk = registry().build(&spec).unwrap();
        let name = info.family.name();
        assert_eq!(sk.as_point().is_some(), info.caps.point, "{name}: point");
        assert_eq!(sk.as_norm().is_some(), info.caps.norm, "{name}: norm");
        assert_eq!(sk.as_sample().is_some(), info.caps.sample, "{name}: sample");
        assert_eq!(
            sk.as_support().is_some(),
            info.caps.support,
            "{name}: support"
        );
        assert!(
            info.caps.point || info.caps.norm || info.caps.sample || info.caps.support,
            "{name}: no query capability — conformance probes would be vacuous"
        );
        // merge_dyn agrees with the mergeable flag.
        let other = registry().build(&spec).unwrap();
        let merged = sk.merge_dyn(other.as_ref());
        assert_eq!(merged.is_ok(), info.caps.mergeable, "{name}: mergeable");
    }
}

/// Determinism must also hold in the *thinning* regime, where halving
/// consumes RNG draws per retained entry (the degenerate budget above never
/// thins, so it can't catch iteration-order nondeterminism).
#[test]
fn thinned_sampling_regime_stays_deterministic() {
    for family in [SketchFamily::SampledVector, SketchFamily::Csss] {
        let spec = conformance_spec(family).with_budget(128).with_seed(28);
        check_determinism("thinned", &spec);
    }
    // SampledVector keeps the default sequential batch loop, so bitwise
    // batch equality holds even while thinning; CSSS's pre-aggregating
    // override is only statistical there (covered by its module tests).
    let spec = conformance_spec(SketchFamily::SampledVector)
        .with_budget(128)
        .with_seed(28);
    check_batch_exact("thinned(SampledVector)", &spec);
}

/// The batched heavy-hitter paths must answer queries as well as the
/// sequential ones (their overrides are statistical, not bitwise — the
/// families that opt out of `batch_bitwise`, both heavy-hitter variants).
#[test]
fn heavy_hitters_batched_quality_matches() {
    let eps = 0.05;
    let s = BoundedDeletionGen::new(1 << 12, 40_000, 4.0).generate_seeded(0x51);
    let truth = FrequencyVector::from_stream(&s);
    for family in [SketchFamily::AlphaHh, SketchFamily::AlphaHhGeneral] {
        let spec = SketchSpec::new(family)
            .with_n(s.n)
            .with_epsilon(eps)
            .with_alpha(4.0)
            .with_seed(99);
        for runner in [StreamRunner::unbatched(), StreamRunner::new()] {
            let mut hh: AlphaHeavyHitters = build_sketch(&spec);
            runner.run(&mut hh, &s);
            let got: Vec<u64> = hh.query().into_iter().map(|(i, _)| i).collect();
            for i in truth.l1_heavy_hitters(eps) {
                assert!(
                    got.contains(&i),
                    "{family}: missed {i} (chunk {})",
                    runner.chunk()
                );
            }
        }
    }
}
