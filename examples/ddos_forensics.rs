//! DDoS detection and forensic sampling — the paper cites attack detection
//! and trending-term identification as α-property workloads (§1). During an
//! attack, a small set of targets receives a flood of connections; after
//! legitimate-traffic cancellation the residual vector is dominated by the
//! attack, so α stays small while the stream is huge.
//!
//! Pipeline: flag attack targets (heavy hitters), then draw L1 samples of
//! the residual traffic — samples land on flows proportionally to their
//! residual volume, giving a forensic view of *who* is hitting the victim —
//! using the αL1Sampler (Figure 3), which needs the strong α-property.
//! Every pass goes through the shared `StreamRunner`.
//!
//! Run with: `cargo run --release --example ddos_forensics`

use bounded_deletions::prelude::*;
use std::collections::HashMap;

fn main() {
    let n = 1u64 << 12; // victim-side flow table
    println!("== ddos forensics ==\n");
    let runner = StreamRunner::new();

    // Baseline flows with churn (strong α = 3), plus a planted attack: five
    // flows carrying 30% of residual volume.
    let mut stream = StrongAlphaGen::new(n, 600, 3.0).generate_seeded(1337);
    let base_mass = FrequencyVector::from_stream(&stream).l1();
    let per_attacker = (base_mass as f64 * 0.06) as u64 + 1;
    for a in 0..5u64 {
        stream = stream.chain(StreamBatch::new(
            n,
            vec![Update::insert(4000 + a, per_attacker)],
        ));
    }
    let truth = FrequencyVector::from_stream(&stream);
    let alpha = truth.alpha_strong();
    println!(
        "{} updates, residual volume {}, strong α = {:.2}",
        stream.len(),
        truth.l1(),
        alpha
    );

    let mut hh: AlphaHeavyHitters = build_sketch(
        &SketchSpec::new(SketchFamily::AlphaHh)
            .with_n(n)
            .with_epsilon(0.05)
            .with_alpha(alpha)
            .with_delta(0.1)
            .with_seed(1),
    );
    let report = runner.run(&mut hh, &stream);
    println!(
        "\nflagged attack targets (ε = 0.05 heavy hitters, {:.1} Mupd/s):",
        report.updates_per_sec() / 1e6
    );
    for (item, est) in hh.query().into_iter().take(6) {
        let tag = if item >= 4000 { "ATTACK" } else { "normal" };
        println!("  flow {item:>5}: volume ≈ {est:>8.0}  [{tag}]");
    }

    // Forensic sampling: repeated L1 samples of the residual vector, one
    // seeded sampler per draw.
    let sample_spec = SketchSpec::new(SketchFamily::AlphaL1Sampler)
        .with_n(n)
        .with_epsilon(0.25)
        .with_alpha(alpha)
        .with_delta(0.3);
    println!("\nforensic L1 samples (αL1Sampler, 40 independent draws):");
    let mut hits: HashMap<u64, usize> = HashMap::new();
    let mut fails = 0;
    for seed in 0..40u64 {
        let mut sampler: AlphaL1Sampler = build_sketch(&sample_spec.with_seed(9000 + seed));
        runner.run(&mut sampler, &stream);
        match sampler.sample() {
            SampleOutcome::Sample { item, .. } => *hits.entry(item).or_insert(0) += 1,
            SampleOutcome::Fail => fails += 1,
        }
    }
    let mut ranked: Vec<(u64, usize)> = hits.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (item, count) in ranked.iter().take(8) {
        let share = truth.get(*item).unsigned_abs() as f64 / truth.l1() as f64;
        println!(
            "  flow {item:>5}: sampled {count:>2}×  (true L1 share {:.1}%)",
            100.0 * share
        );
    }
    println!("  ({fails}/40 draws declined — allowed with probability δ)");
}
