//! Remote Differential Compression — the paper's database-synchronization
//! scenario (§1): a client and server compare file versions by streaming
//! block-signature differences. Unchanged blocks cancel; only edited blocks
//! survive. Even with half the file edited, the stream has α ≈ 2.
//!
//! Pipeline: estimate how much of the file changed (strict-turnstile L1 on
//! the block multiset sizes), count distinct changed signatures (L0), and
//! recover actual changed-block identities (support sampling) so the sync
//! protocol knows what to transfer. One `StreamRunner` drives all three
//! sketches.
//!
//! Run with: `cargo run --release --example database_sync`

use bounded_deletions::prelude::*;

fn main() {
    let n = 1u64 << 40; // block-signature space
    println!("== remote differential compression ==\n");
    let runner = StreamRunner::new();

    for (t, edit_fraction) in [0.05, 0.25, 0.5].into_iter().enumerate() {
        let stream = RdcGen::new(n, 50_000, edit_fraction).generate_seeded(77 + t as u64);
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l1().max(truth.alpha_l0());
        println!(
            "edit fraction {edit_fraction:>4}: {} signature updates, α = {:.1}",
            stream.len(),
            alpha
        );

        let spec = SketchSpec::new(SketchFamily::AlphaL1General)
            .with_n(n)
            .with_epsilon(0.1)
            .with_alpha(alpha.max(1.0));

        // One engine pass per sketch: difference mass, distinct differing
        // signatures, and the signatures themselves — one spec each,
        // differing only in family (and the support request size k).
        let mut diff_mass: AlphaL1General = build_sketch(&spec.with_seed(1));
        let mut distinct: AlphaL0Estimator =
            build_sketch(&spec.with_family(SketchFamily::AlphaL0).with_seed(2));
        let mut which: AlphaSupportSamplerSet = build_sketch(
            &spec
                .with_family(SketchFamily::AlphaSupportSet)
                .with_k(16)
                .with_seed(3),
        );
        let reports = runner.run_each(
            &mut [&mut diff_mass as &mut dyn Sketch, &mut distinct, &mut which],
            &stream,
        );

        println!(
            "    difference mass: est {:>8.0} vs true {:>7}",
            diff_mass.estimate(),
            truth.l1()
        );
        println!(
            "    distinct changed signatures: est {:>8.0} vs true {:>7}",
            distinct.estimate(),
            truth.l0()
        );
        let recovered = which.query();
        let valid = recovered.iter().filter(|&&i| truth.get(i) != 0).count();
        println!(
            "    recovered {} changed signatures to request ({} valid)",
            recovered.len(),
            valid
        );
        let total_bits: u64 = reports.iter().map(|r| r.space_bits()).sum();
        println!(
            "    sketch space: {} KiB (vs {} KiB of raw signatures)\n",
            total_bits / 8 / 1024,
            50_000 * 64 / 8 / 1024
        );
    }
}
