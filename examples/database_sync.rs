//! Remote Differential Compression — the paper's database-synchronization
//! scenario (§1): a client and server compare file versions by streaming
//! block-signature differences. Unchanged blocks cancel; only edited blocks
//! survive. Even with half the file edited, the stream has α ≈ 2.
//!
//! Pipeline: estimate how much of the file changed (strict-turnstile L1 on
//! the block multiset sizes), count distinct changed signatures (L0), and
//! recover actual changed-block identities (support sampling) so the sync
//! protocol knows what to transfer.
//!
//! Run with: `cargo run --release --example database_sync`

use bounded_deletions::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 1u64 << 40; // block-signature space
    println!("== remote differential compression ==\n");

    for edit_fraction in [0.05, 0.25, 0.5] {
        let stream = RdcGen::new(n, 50_000, edit_fraction).generate(&mut rng);
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l1().max(truth.alpha_l0());
        println!(
            "edit fraction {edit_fraction:>4}: {} signature updates, α = {:.1}",
            stream.len(),
            alpha
        );

        let params = Params::practical(n, 0.1, alpha.max(1.0));

        // One pass: difference mass, distinct differing signatures, and the
        // signatures themselves.
        let mut diff_mass = AlphaL1General::new(&mut rng, &params);
        let mut distinct = AlphaL0Estimator::new(&mut rng, &params);
        let mut which = AlphaSupportSamplerSet::new(&mut rng, &params, 16);
        for u in &stream {
            diff_mass.update(&mut rng, u.item, u.delta);
            distinct.update(&mut rng, u.item, u.delta);
            which.update(&mut rng, u.item, u.delta);
        }

        println!(
            "    difference mass: est {:>8.0} vs true {:>7}",
            diff_mass.estimate(),
            truth.l1()
        );
        println!(
            "    distinct changed signatures: est {:>8.0} vs true {:>7}",
            distinct.estimate(),
            truth.l0()
        );
        let recovered = which.query();
        let valid = recovered.iter().filter(|&&i| truth.get(i) != 0).count();
        println!(
            "    recovered {} changed signatures to request ({} valid)",
            recovered.len(),
            valid
        );
        println!(
            "    sketch space: {} KiB (vs {} KiB of raw signatures)\n",
            (diff_mass.space_bits() + distinct.space_bits() + which.space_bits()) / 8 / 1024,
            50_000 * 64 / 8 / 1024
        );
    }
}
