//! Quickstart: sketch one bounded-deletion stream end to end.
//!
//! Generates a strict-turnstile stream with α = 4 (deletions cancel 60% of
//! the inserted mass), then runs the paper's heavy hitters, L1 estimator,
//! L0 estimator, and support sampler through the shared `StreamRunner`,
//! comparing every answer against exact ground truth. Every sketch is built
//! from a declarative `SketchSpec` through the workspace registry — specs
//! are seeded, so rerunning this binary reproduces every number
//! bit-for-bit.
//!
//! Run with: `cargo run --release --example quickstart`

use bounded_deletions::prelude::*;

fn main() {
    let n = 1u64 << 16;
    let alpha = 4.0;
    let epsilon = 0.1;

    println!("== bounded-deletions quickstart ==");
    println!("universe n = 2^16, target α = {alpha}, ε = {epsilon}\n");

    // A skewed Zipfian stream of 100k insertions with deletions tuned to α
    // (a concentrated head, so ε-heavy hitters actually exist).
    let mut gen = BoundedDeletionGen::new(n, 100_000, alpha);
    gen.distinct = 128;
    gen.zipf_s = 1.3;
    let stream = gen.generate_seeded(42);
    let truth = FrequencyVector::from_stream(&stream);
    println!(
        "stream: {} updates, ‖f‖₁ = {}, ‖f‖₀ = {}, realized α = {:.2}",
        stream.len(),
        truth.l1(),
        truth.l0(),
        truth.alpha_l1()
    );

    // One way to build every sketch: a declarative spec (family + n, ε, α,
    // seed) handed to the workspace registry.
    let spec = SketchSpec::new(SketchFamily::AlphaHh)
        .with_n(n)
        .with_epsilon(epsilon)
        .with_alpha(alpha);
    let runner = StreamRunner::new();

    // --- one engine drives the L1 sketches over the stream ---
    let mut hh: AlphaHeavyHitters = build_sketch(&spec.with_seed(1));
    let mut l1: AlphaL1Estimator =
        build_sketch(&spec.with_family(SketchFamily::AlphaL1).with_seed(2));
    let hh_report = runner.run(&mut hh, &stream);
    let l1_report = runner.run(&mut l1, &stream);

    // --- a second, support-style stream for the L0 sketches ---
    let n_l0 = 1u64 << 24;
    let l0_stream = L0AlphaGen::new(n_l0, 2_000, alpha).generate_seeded(43);
    let l0_truth = FrequencyVector::from_stream(&l0_stream);
    let l0_spec = spec.with_n(n_l0).with_epsilon(0.15);
    let mut l0: AlphaL0Estimator =
        build_sketch(&l0_spec.with_family(SketchFamily::AlphaL0).with_seed(3));
    let mut support: AlphaSupportSampler = build_sketch(
        &l0_spec
            .with_family(SketchFamily::AlphaSupport)
            .with_k(8)
            .with_seed(4),
    );
    let l0_report = runner.run(&mut l0, &l0_stream);
    let support_report = runner.run(&mut support, &l0_stream);

    // --- heavy hitters ---
    let found = hh.query();
    let exact_hh = truth.l1_heavy_hitters(epsilon);
    println!("\nε-heavy hitters (ε = {epsilon}):");
    for (item, est) in found.iter().take(8) {
        println!(
            "  item {item:>6}: estimate {est:>9.1}, true {:>6}",
            truth.get(*item)
        );
    }
    let recall = exact_hh
        .iter()
        .filter(|i| found.iter().any(|(j, _)| j == *i))
        .count();
    println!(
        "  recall {recall}/{} exact heavy hitters, space = {} bits, \
         ingest {:.1} Mupd/s",
        exact_hh.len(),
        hh_report.space_bits(),
        hh_report.updates_per_sec() / 1e6
    );

    // --- L1 estimation ---
    println!("\nL1 estimation (Figure 4, Morris + interval sampling):");
    println!(
        "  estimate {:.0} vs true {} ({:+.2}%), space = {} bits",
        l1.estimate(),
        truth.l1(),
        100.0 * (l1.estimate() - truth.l1() as f64) / truth.l1() as f64,
        l1_report.space_bits()
    );

    // --- L0 estimation ---
    println!(
        "\nL0 estimation (Figure 7, windowed levels; occupancy stream, α_L0 = {:.1}):",
        l0_truth.alpha_l0()
    );
    println!(
        "  estimate {:.0} vs true {} ({:+.2}%), live rows {} of log n = {}",
        l0.estimate(),
        l0_truth.l0(),
        100.0 * (l0.estimate() - l0_truth.l0() as f64) / l0_truth.l0() as f64,
        l0.peak_live_rows(),
        64 - (n_l0 - 1).leading_zeros()
    );
    println!("  ingest {:.1} Mupd/s", l0_report.updates_per_sec() / 1e6);

    // --- support sampling ---
    let got = support.query();
    let valid = got.iter().filter(|&&i| l0_truth.get(i) != 0).count();
    println!("\nsupport sampling (Figure 8):");
    println!(
        "  recovered {} support items ({} valid), space = {} bits",
        got.len(),
        valid,
        support_report.space_bits()
    );
}
