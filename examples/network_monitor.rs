//! Network traffic differencing — the paper's first motivating scenario
//! (§1): estimate differences between traffic patterns across two time
//! intervals. The difference stream `f¹ − f²` is a *general turnstile*
//! stream, but realistic drift keeps `α = ‖f¹+f²‖₁/‖f¹−f²‖₁` modest, which
//! is exactly the α-property regime.
//!
//! Pipeline: find the flows whose rates changed the most (heavy hitters of
//! the difference), estimate the total traffic drift (general-turnstile
//! L1), and estimate the similarity of two routers' traffic (inner
//! product). All ingestion goes through the shared `StreamRunner`.
//!
//! Run with: `cargo run --release --example network_monitor`

use bounded_deletions::prelude::*;

fn main() {
    let n = 1u64 << 24; // (src, dst) pair space
    println!("== network traffic differencing ==\n");

    // Two intervals of traffic; 10% of flows drift between them.
    let diff_stream = NetworkDiffGen::new(n, 200_000, 0.10).generate_seeded(2024);
    let truth = FrequencyVector::from_stream(&diff_stream);
    let alpha = truth.alpha_l1();
    println!(
        "difference stream: {} updates over {} flows, realized α = {:.1}",
        diff_stream.len(),
        truth.f0(),
        alpha
    );

    // Specs, not constructors: the registry builds both sketches from the
    // same declarative description of the problem.
    let spec = SketchSpec::new(SketchFamily::AlphaHhGeneral)
        .with_n(n)
        .with_epsilon(0.05)
        .with_alpha(alpha.max(1.0));
    let runner = StreamRunner::new();

    // Heavy hitters of the difference = flows with the largest rate change;
    // drift magnitude via the sampled Cauchy sketch (Theorem 8).
    let mut hh: AlphaHeavyHitters = build_sketch(&spec.with_seed(1));
    let mut drift: AlphaL1General =
        build_sketch(&spec.with_family(SketchFamily::AlphaL1General).with_seed(2));
    let reports = runner.run_each(&mut [&mut hh as &mut dyn Sketch, &mut drift], &diff_stream);

    println!("\nflows with the largest |rate change| (ε = 0.05 of total drift):");
    for (flow, est) in hh.query().into_iter().take(5) {
        println!(
            "  flow {flow:>9}: Δrate ≈ {est:>8.0} pkts (true {:>6})",
            truth.get(flow)
        );
    }
    println!(
        "\ntotal drift ‖f¹−f²‖₁: estimate {:.0} vs true {} ({:+.1}%)",
        drift.estimate(),
        truth.l1(),
        100.0 * (drift.estimate() - truth.l1() as f64) / truth.l1() as f64
    );
    println!(
        "ingest: heavy hitters {:.1} Mupd/s, drift sketch {:.1} Mupd/s",
        reports[0].updates_per_sec() / 1e6,
        reports[1].updates_per_sec() / 1e6
    );

    // Router similarity: inner product between two routers' traffic vectors.
    let router_a = NetworkDiffGen::new(n, 150_000, 0.25).generate_seeded(2025);
    let router_b = NetworkDiffGen::new(n, 150_000, 0.25).generate_seeded(2026);
    let va = FrequencyVector::from_stream(&router_a);
    let vb = FrequencyVector::from_stream(&router_b);
    let ip_alpha = va.alpha_l1().max(vb.alpha_l1()).max(1.0);
    let mut ip = AlphaInnerProduct::from_spec(
        &SketchSpec::new(SketchFamily::AlphaIp)
            .with_n(n)
            .with_epsilon(0.02)
            .with_alpha(ip_alpha)
            .with_seed(3),
    );
    runner.run(&mut ip.f, &router_a);
    runner.run(&mut ip.g, &router_b);
    let est = ip.estimate();
    let exact = va.inner_product(&vb) as f64;
    println!("\nrouter similarity ⟨f,g⟩ (Theorem 2, ε = 0.02):");
    println!("  estimate {est:.3e} vs exact {exact:.3e}");
    println!(
        "  additive error {:.2e} within budget ε‖f‖₁‖g‖₁ = {:.2e}",
        (est - exact).abs(),
        0.02 * va.l1() as f64 * vb.l1() as f64
    );
    println!("  sketch space: {} bits total", ip.space_bits());
}
