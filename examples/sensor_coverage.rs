//! Clustered sensor networks — the paper's L0 scenario (§1): cheap moving
//! sensors cluster on persistent cells (food, water accumulation) while a
//! churn population visits and leaves, so the ratio `F₀/L₀` of
//! ever-occupied to currently-occupied cells stays bounded. Estimating the
//! occupied-cell count is L0 estimation under the L0 α-property.
//! Ingestion goes through the shared `StreamRunner`.
//!
//! Run with: `cargo run --release --example sensor_coverage`

use bounded_deletions::prelude::*;

fn main() {
    let n = 1u64 << 28; // grid cells
    println!("== sensor coverage monitoring ==\n");
    println!("cells ever occupied = F₀, still occupied = L₀, α = F₀/L₀\n");
    let runner = StreamRunner::new();

    for (t, (core, transient)) in [(4_000, 4_000), (2_000, 6_000), (1_000, 15_000)]
        .into_iter()
        .enumerate()
    {
        let stream = SensorGen::new(n, core, transient).generate_seeded(99 + t as u64);
        let truth = FrequencyVector::from_stream(&stream);
        let alpha = truth.alpha_l0();
        let spec = SketchSpec::new(SketchFamily::AlphaL0)
            .with_n(n)
            .with_epsilon(0.1)
            .with_alpha(alpha);

        let mut l0: AlphaL0Estimator = build_sketch(&spec.with_seed(1));
        let mut tracker: AlphaRoughL0 =
            build_sketch(&spec.with_family(SketchFamily::AlphaRoughL0).with_seed(2));
        let reports = runner.run_each(&mut [&mut l0 as &mut dyn Sketch, &mut tracker], &stream);

        println!("core {core:>5} + transient {transient:>5}  (α = {alpha:.1}):");
        println!(
            "    occupied cells: est {:>7.0} vs true {:>6} ({:+.1}%)",
            l0.estimate(),
            truth.l0(),
            100.0 * (l0.estimate() - truth.l0() as f64) / truth.l0() as f64
        );
        println!(
            "    rough tracker ceiling {:>7} (must be ≥ L₀ at all times)",
            tracker.estimate()
        );
        println!(
            "    live subsampling rows: {} of log n = {} — the log α win",
            l0.peak_live_rows(),
            64 - (n - 1).leading_zeros()
        );
        println!(
            "    space: {} KiB, ingest {:.1} Mupd/s\n",
            reports[0].space_bits() / 8 / 1024,
            reports[0].updates_per_sec() / 1e6
        );
    }
}
