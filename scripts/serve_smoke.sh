#!/usr/bin/env sh
# CI smoke test for the TCP query front-end: start `sketchctl serve
# --listen` on an ephemeral port, drive it with `sketchctl loadgen`
# (concurrent readers, batched ≡ scalar verification, graceful Shutdown),
# and require both processes to exit 0.
#
# Usage: scripts/serve_smoke.sh [readers] [requests]
#   readers:  concurrent loadgen connections (default 4)
#   requests: timed requests per reader (default 200)

set -eu
cd "$(dirname "$0")/.."
READERS="${1:-4}"
REQUESTS="${2:-200}"

cargo build --release -p bd-bench --bin sketchctl

SERVE_LOG="$(mktemp)"
trap 'rm -f "$SERVE_LOG"; kill "$SERVE_PID" 2>/dev/null || true' EXIT

target/release/sketchctl serve \
    --spec 'csss:n=2^14,eps=0.05,alpha=4,seed=42' \
    --epoch 20000 --threads 3 \
    --listen 127.0.0.1:0 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

# The server binds port 0 and prints the resolved address; poll for it.
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    ADDR="$(sed -n 's/^listening on \(.*\)$/\1/p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve_smoke.sh: server exited before listening:" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve_smoke.sh: server never printed its listen address" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi

LOADGEN_OUT="$(target/release/sketchctl loadgen \
    --addr "$ADDR" --readers "$READERS" --requests "$REQUESTS" \
    --batch 16 --universe 16384 --shutdown)"
echo "$LOADGEN_OUT"

# Shutdown was requested: the server must exit 0 on its own.
wait "$SERVE_PID"
cat "$SERVE_LOG"

# The run must have produced verified batched ≡ scalar answers (a 0 count
# would mean every stamp pair raced an epoch cut — or verification broke).
VERIFIED="$(echo "$LOADGEN_OUT" | sed -n 's/^verified \([0-9]*\) .*/\1/p')"
if [ -z "$VERIFIED" ] || [ "$VERIFIED" -eq 0 ]; then
    echo "serve_smoke.sh: no verified batched answers" >&2
    exit 1
fi
echo "serve_smoke.sh: OK ($VERIFIED verified answers)"
