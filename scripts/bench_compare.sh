#!/usr/bin/env sh
# CI perf-trajectory gate: re-measure ingest throughput and fail on >20%
# regression against the committed BENCH_ingest.json baseline.
#
# Usage: scripts/bench_compare.sh [tolerance]
#   tolerance: allowed fractional regression (default 0.20)
#
# The bench overwrites BENCH_ingest.json in place, so the committed baseline
# is snapshotted first and both files are handed to the bench_compare bin
# (crates/bench/src/bin/bench_compare.rs). Measurements present in both
# files are gated — that includes the `ingest_service` section, so a >20%
# snapshot-overhead regression in the StreamService fails here. Dropped
# measurements are never gated by the bin, so additionally assert the
# sharded, service, hash (including the per-kernel SIMD rows), merge,
# query (batched vs scalar point queries on a published snapshot), serve
# (TCP round-trips under concurrent readers), service_overload (burst
# ingestion through bounded queues, with the bounded-RSS assertion),
# persist (snapshot encode/decode per family plus the cold-start recovery
# path), and wal (persisted ingestion per fsync policy — with the bench's
# own <20% epoch-policy overhead gate — plus WAL-tail replay) sections
# cannot silently vanish from the bench.

set -eu
cd "$(dirname "$0")/.."
TOLERANCE="${1:-0.20}"

BASELINE="$(mktemp)"
trap 'rm -f "$BASELINE"' EXIT
cp BENCH_ingest.json "$BASELINE"

cargo bench -p bd-bench --bench ingest

for section in '"ingest_sharded/' '"ingest_service/' '"hash/' '"hash/simd_' '"merge/' \
    '"query/' '"serve/' '"service_overload/' '"persist/' '"wal/'; do
    if ! grep -q "$section" BENCH_ingest.json; then
        echo "bench_compare.sh: $section section missing from BENCH_ingest.json" >&2
        exit 1
    fi
done

cargo run --release -p bd-bench --bin bench_compare -- \
    "$BASELINE" BENCH_ingest.json "$TOLERANCE"
